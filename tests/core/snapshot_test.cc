// Snapshot semantics: create/delete/activate, point-in-time isolation, writable views,
// chains and forks — all verified against the brute-force ReferenceModel.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(SnapshotTest, CreateIsCheapAndWritesOneNote) {
  FtlHarness h(SmallConfig());
  for (uint64_t lba = 0; lba < 50; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const uint64_t pages_before = h.ftl().stats().total_pages_programmed;
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s1"));
  EXPECT_EQ(snap, 1u);
  // Exactly one note page, independent of the 50 pages of data (§6.2.1).
  EXPECT_EQ(h.ftl().stats().total_pages_programmed, pages_before + 1);
  EXPECT_EQ(h.ftl().stats().snapshots_created, 1u);
}

TEST(SnapshotTest, SnapshotPreservesPointInTimeState) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
    model.Write(lba, 1);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s1"));
  model.Snapshot(snap);

  // Diverge the active view: overwrites and trims.
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_OK(h.Write(lba, 2));
    model.Write(lba, 2);
  }
  ASSERT_OK(h.Trim(15, 3));
  model.Trim(15, 3);

  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 20));

  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 20));
}

TEST(SnapshotTest, ChainedSnapshotsEachKeepTheirState) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  std::vector<uint32_t> snaps;
  uint64_t version = 0;
  Rng rng(3);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 30; ++i) {
      const uint64_t lba = rng.NextBelow(40);
      ++version;
      ASSERT_OK(h.Write(lba, version));
      model.Write(lba, version);
    }
    ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("round"));
    model.Snapshot(snap);
    snaps.push_back(snap);
  }
  for (uint32_t snap : snaps) {
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 40)) << "snapshot " << snap;
    ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  }
}

TEST(SnapshotTest, EmptySnapshotActivates) {
  FtlHarness h(SmallConfig());
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("empty"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckLba(view, 0, 0));
  ASSERT_OK_AND_ASSIGN(uint64_t entries, h.ftl().ViewMapEntryCount(view));
  EXPECT_EQ(entries, 0u);
}

TEST(SnapshotTest, DeleteRemovesSnapshotAndRejectsActivation) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK(h.Delete(snap));
  EXPECT_EQ(h.ftl().stats().snapshots_deleted, 1u);
  EXPECT_EQ(h.Activate(snap).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.Delete(snap).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.Delete(99).code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, DeleteWithActiveViewRefused) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_EQ(h.Delete(snap).code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  EXPECT_OK(h.Delete(snap));
}

TEST(SnapshotTest, ReadOnlyViewRejectsWrites) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap, /*writable=*/false));
  EXPECT_EQ(h.ftl().WriteView(view, 0, {}, h.now()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, WritableViewDivergesWithoutDisturbingSnapshot) {
  // §5.6 design extension: a writable activation absorbs writes on a forked epoch and
  // "never overwrites the snapshot".
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap, /*writable=*/true));

  // Write through the view.
  const auto data = PageData(config.nand.page_size_bytes, 3, 99);
  ASSERT_OK_AND_ASSIGN(IoResult io, h.ftl().WriteView(view, 3, data, h.now()));
  h.AdvanceTo(io.CompletionNs());

  EXPECT_TRUE(h.CheckLba(view, 3, 99));        // View sees its own write.
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 3, 1)); // Primary is unaffected.

  // Re-activating the snapshot still shows the original state.
  ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  ASSERT_OK_AND_ASSIGN(uint32_t view2, h.Activate(snap));
  EXPECT_TRUE(h.CheckLba(view2, 3, 1));
}

TEST(SnapshotTest, ParallelActivationsCoexist) {
  // §5.6: "ioSnap in theory does not impose any limit on the number of snapshots that
  // may be activated in parallel" — this implementation supports it.
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  ASSERT_OK(h.Write(0, 1));
  model.Write(0, 1);
  ASSERT_OK_AND_ASSIGN(uint32_t s1, h.Snapshot("s1"));
  model.Snapshot(s1);
  ASSERT_OK(h.Write(0, 2));
  model.Write(0, 2);
  ASSERT_OK_AND_ASSIGN(uint32_t s2, h.Snapshot("s2"));
  model.Snapshot(s2);
  ASSERT_OK(h.Write(0, 3));

  ASSERT_OK_AND_ASSIGN(uint32_t v1, h.Activate(s1));
  ASSERT_OK_AND_ASSIGN(uint32_t v2, h.Activate(s2));
  EXPECT_TRUE(h.CheckLba(v1, 0, 1));
  EXPECT_TRUE(h.CheckLba(v2, 0, 2));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 0, 3));
  EXPECT_EQ(h.ftl().ActiveViewIds().size(), 3u);
}

TEST(SnapshotTest, ForkedHistoryViaWritableView) {
  // Figure 4's fork: activate an old snapshot writable, diverge, snapshot the branch...
  // here we verify the two branches stay independent.
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(1, 10));
  ASSERT_OK_AND_ASSIGN(uint32_t s1, h.Snapshot("s1"));
  ASSERT_OK(h.Write(1, 20));  // Main branch diverges.

  ASSERT_OK_AND_ASSIGN(uint32_t branch, h.Activate(s1, /*writable=*/true));
  const auto data = PageData(SmallConfig().nand.page_size_bytes, 1, 30);
  ASSERT_OK_AND_ASSIGN(IoResult io, h.ftl().WriteView(branch, 1, data, h.now()));
  h.AdvanceTo(io.CompletionNs());

  EXPECT_TRUE(h.CheckLba(kPrimaryView, 1, 20));
  EXPECT_TRUE(h.CheckLba(branch, 1, 30));
}

TEST(SnapshotTest, UnlimitedSnapshotsOnlyBoundByCapacity) {
  // Many snapshots with small deltas: all must be created without error and metadata
  // stays one note page each.
  FtlHarness h(SmallConfig());
  const uint64_t pages_before = h.ftl().stats().total_pages_programmed;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(h.Write(static_cast<uint64_t>(i), 1));
    ASSERT_OK(h.Snapshot("s").status());
  }
  EXPECT_EQ(h.ftl().stats().snapshots_created, 40u);
  EXPECT_EQ(h.ftl().stats().total_pages_programmed, pages_before + 80u);
}

TEST(SnapshotTest, ActivationMapIsCompact) {
  // Table 3: the activated tree bulk-loads packed nodes, so with identical contents it
  // uses no more memory than the organically grown active tree.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(h.Write(rng.NextBelow(h.ftl().LbaCount()), 1));
    h.ftl().PumpBackground(h.now());
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));

  ASSERT_OK_AND_ASSIGN(uint64_t active_bytes, h.ftl().ViewMapMemoryBytes(kPrimaryView));
  ASSERT_OK_AND_ASSIGN(uint64_t view_bytes, h.ftl().ViewMapMemoryBytes(view));
  ASSERT_OK_AND_ASSIGN(uint64_t active_entries, h.ftl().ViewMapEntryCount(kPrimaryView));
  ASSERT_OK_AND_ASSIGN(uint64_t view_entries, h.ftl().ViewMapEntryCount(view));
  EXPECT_EQ(view_entries, active_entries);
  EXPECT_LE(view_bytes, active_bytes);
}

TEST(SnapshotTest, SnapshotOfSnapshotChainsDepth) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t s1, h.Snapshot("s1"));
  ASSERT_OK(h.Write(0, 2));
  ASSERT_OK_AND_ASSIGN(uint32_t s2, h.Snapshot("s2"));
  ASSERT_OK(h.Write(0, 3));
  ASSERT_OK_AND_ASSIGN(uint32_t s3, h.Snapshot("s3"));
  EXPECT_EQ(h.ftl().snapshot_tree().SnapshotDepth(s1), 0);
  EXPECT_EQ(h.ftl().snapshot_tree().SnapshotDepth(s2), 1);
  EXPECT_EQ(h.ftl().snapshot_tree().SnapshotDepth(s3), 2);
}

}  // namespace
}  // namespace iosnap
