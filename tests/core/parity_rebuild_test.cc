// Parity-protected segments: stripe geometry, the member-image XOR encoding, and the
// end-to-end rebuild paths — host read, GC copy-forward, patrol scrub, and offline
// fsck triage/repair. A single unreadable page in a stripe must come back bit-exact
// (the parity image carries the member's original CRC, so a reconstruction is
// re-verified before anyone trusts it); a second fault in the same stripe must stay
// an honest, typed data loss.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fsck.h"
#include "src/core/ftl.h"
#include "src/nand/page_header.h"
#include "src/nand/parity.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

constexpr uint64_t kStripe = 3;  // (kStripe + 1) divides both test geometries.

FtlConfig ParityConfig() {
  FtlConfig config = SmallConfig();
  config.parity_stripe = kStripe;
  return config;
}

void Pump(FtlHarness* h, int times, uint64_t step_ns = 1000000) {
  for (int i = 0; i < times; ++i) {
    h->AdvanceTo(h->now() + step_ns);
    h->ftl().PumpBackground(h->now());
  }
}

uint64_t PaddrOf(Ftl* ftl, uint64_t lba) {
  auto entries = ftl->ViewMapEntries(kPrimaryView);
  IOSNAP_CHECK(entries.ok());
  for (const auto& [entry_lba, paddr] : *entries) {
    if (entry_lba == lba) {
      return paddr;
    }
  }
  IOSNAP_CHECK(false);
  return 0;
}

// Some (lba, paddr) whose backing page sits in a *closed* segment and belongs to a
// full-width stripe (so stripe-membership tests have kStripe members to play with).
std::pair<uint64_t, uint64_t> VictimInClosedSegment(Ftl* ftl, uint64_t stripe) {
  auto entries = ftl->ViewMapEntries(kPrimaryView);
  IOSNAP_CHECK(entries.ok());
  const uint64_t pages_per_segment = ftl->device().config().pages_per_segment;
  for (const auto& [lba, paddr] : *entries) {
    const uint64_t segment = ftl->device().SegmentOf(paddr);
    if (ftl->log_manager().segment_info(segment).state != SegmentState::kClosed) {
      continue;
    }
    const uint64_t index = paddr % pages_per_segment;
    const uint64_t pslot = ParitySlotFor(index, stripe, pages_per_segment);
    if (pslot - StripeStartIndex(pslot, stripe) == stripe) {
      return {lba, paddr};
    }
  }
  IOSNAP_CHECK(false);
  return {0, 0};
}

TEST(ParityGeometryTest, SlotClassification) {
  // stripe 4, 16 pages: regular parity at 4, 9, 14; the final page is always parity.
  for (uint64_t i = 0; i < 16; ++i) {
    const bool expect = i == 4 || i == 9 || i == 14 || i == 15;
    EXPECT_EQ(IsParitySlot(i, 4, 16), expect) << "index " << i;
    EXPECT_FALSE(IsParitySlot(i, 0, 16)) << "index " << i;  // Parity off: never.
  }
  EXPECT_EQ(StripeStartIndex(4, 4), 0u);
  EXPECT_EQ(StripeStartIndex(6, 4), 5u);
  EXPECT_EQ(StripeStartIndex(15, 4), 15u);  // Final slot: a zero-member stripe.
  for (uint64_t i = 0; i <= 3; ++i) {
    EXPECT_EQ(ParitySlotFor(i, 4, 16), 4u);
  }
  for (uint64_t i = 5; i <= 8; ++i) {
    EXPECT_EQ(ParitySlotFor(i, 4, 16), 9u);
  }
  for (uint64_t i = 10; i <= 13; ++i) {
    EXPECT_EQ(ParitySlotFor(i, 4, 16), 14u);
  }
  // Clamping: with 12 pages the regular slot for member 10 (14) is past the end, so
  // the segment-final page covers the short tail stripe.
  EXPECT_TRUE(IsParitySlot(11, 4, 12));
  EXPECT_EQ(ParitySlotFor(10, 4, 12), 11u);
  EXPECT_EQ(ParityImageSize(4096), kParityImagePrefixBytes + 4096u);
}

TEST(ParityGeometryTest, MemberImageXorRoundTrip) {
  const uint64_t kPage = 256;
  PageHeader a;
  a.type = RecordType::kData;
  a.lba = 7;
  a.epoch = 2;
  a.seq = 41;
  std::vector<uint8_t> pa(kPage, 0xA5);
  a.crc = ComputePageCrc(a, pa);
  PageHeader b;
  b.type = RecordType::kData;
  b.lba = 9;
  b.epoch = 3;
  b.seq = 99;
  std::vector<uint8_t> pb(kPage);
  for (size_t i = 0; i < pb.size(); ++i) {
    pb[i] = static_cast<uint8_t>(i * 31);
  }
  b.crc = ComputePageCrc(b, pb);

  // XOR both members in, then peel one back out: linearity leaves exactly the other.
  std::vector<uint8_t> image(ParityImageSize(kPage), 0);
  XorMemberImage(image, a, pa, kPage);
  XorMemberImage(image, b, pb, kPage);
  XorMemberImage(image, a, pa, kPage);
  ASSERT_OK_AND_ASSIGN(DecodedMember decoded, DecodeMemberImage(image, kPage));
  EXPECT_EQ(decoded.header.type, RecordType::kData);
  EXPECT_EQ(decoded.header.lba, 9u);
  EXPECT_EQ(decoded.header.epoch, 3u);
  EXPECT_EQ(decoded.header.seq, 99u);
  EXPECT_EQ(decoded.header.crc, b.crc);
  EXPECT_EQ(decoded.payload, pb);

  // A stray bit anywhere in the image (a second fault leaking into the XOR) must
  // fail the decoded member's CRC check, not produce plausible garbage.
  image[kParityImagePrefixBytes + 5] ^= 0x10;
  EXPECT_EQ(DecodeMemberImage(image, kPage).status().code(), StatusCode::kDataLoss);
}

TEST(ParityRebuildTest, HostReadRebuildsSingleFault) {
  FtlHarness h(ParityConfig());
  const uint64_t kLbas = 256;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_GT(h.ftl().log_manager().stats().parity_pages_written, 0u);
  const auto [victim_lba, victim_paddr] = VictimInClosedSegment(&h.ftl(), kStripe);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  // The read succeeds anyway, returns the original bytes, and reports the detour.
  std::vector<uint8_t> data;
  ASSERT_OK_AND_ASSIGN(IoResult io,
                       h.ftl().ReadView(kPrimaryView, victim_lba, h.now(), &data));
  h.AdvanceTo(io.CompletionNs());
  EXPECT_EQ(data, PageData(h.ftl().device().config().page_size_bytes, victim_lba, 1));
  EXPECT_GT(io.rebuild_ns, 0u);
  const FtlStats& s = h.ftl().stats();
  EXPECT_EQ(s.pages_rebuilt, 1u);
  EXPECT_EQ(s.pages_rebuild_failed, 0u);
  EXPECT_EQ(s.user_read_errors, 0u);
  // The map now points at the rebuilt copy: later reads take the normal path.
  EXPECT_NE(PaddrOf(&h.ftl(), victim_lba), victim_paddr);
  ASSERT_TRUE(h.CheckLba(kPrimaryView, victim_lba, 1));
  EXPECT_EQ(h.ftl().stats().pages_rebuilt, 1u);
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
  // The corrupt original is superseded by the rebuilt copy (same lba/epoch/seq), so
  // the offline checker already calls the media consistent.
  ASSERT_OK_AND_ASSIGN(FsckReport report,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(report.Clean()) << FormatFsckReport(report);
  EXPECT_EQ(report.superseded_corrupt_pages, 1u);
  EXPECT_EQ(report.parity_stripe, kStripe);  // Inferred, no flag passed.
}

TEST(ParityRebuildTest, DoubleFaultInStripeIsHonestLoss) {
  FtlHarness h(ParityConfig());
  for (uint64_t lba = 0; lba < 256; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const auto [victim_lba, victim_paddr] = VictimInClosedSegment(&h.ftl(), kStripe);
  const uint64_t pages_per_segment = h.ftl().device().config().pages_per_segment;
  const uint64_t seg_first = victim_paddr - victim_paddr % pages_per_segment;
  const uint64_t index = victim_paddr % pages_per_segment;
  // Corrupt the victim plus a second member of the same stripe: XOR cannot separate
  // two unknowns, so the rebuild must refuse rather than fabricate bytes.
  const uint64_t start = StripeStartIndex(index, kStripe);
  const uint64_t other = start + (index == start ? 1 : 0);
  ASSERT_NE(other, index);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(seg_first + other);

  std::vector<uint8_t> data;
  auto result = h.ftl().ReadView(kPrimaryView, victim_lba, h.now(), &data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  const FtlStats& s = h.ftl().stats();
  EXPECT_EQ(s.pages_rebuilt, 0u);
  EXPECT_GE(s.pages_rebuild_failed, 1u);
  EXPECT_EQ(s.user_read_errors, 1u);
  // The device stays usable: a fresh write to the lost lba sticks.
  ASSERT_OK(h.Write(victim_lba, 2));
  ASSERT_TRUE(h.CheckLba(kPrimaryView, victim_lba, 2));
}

TEST(ParityRebuildTest, CleanerRebuildsInsteadOfDropping) {
  FtlConfig config = TinyConfig();
  config.parity_stripe = kStripe;
  FtlHarness h(config);
  const uint64_t kLbas = 36;
  // Version 1 everywhere, then overwrite all but lba 3: the v1 segments end up nearly
  // dead, greedy victim selection reaches them first, and lba 3's v1 page is the lone
  // live — and corrupt — survivor the copy-forward trips over.
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    if (lba != 3) {
      ASSERT_OK(h.Write(lba, 2));
    }
  }
  const uint64_t victim_paddr = PaddrOf(&h.ftl(), 3);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  for (int round = 0; round < 8 && h.ftl().stats().pages_rebuilt == 0; ++round) {
    auto finish = h.ftl().ForceCleanSegment(h.now());
    if (!finish.ok()) {
      break;
    }
    h.AdvanceTo(*finish);
  }
  const FtlStats& s = h.ftl().stats();
  EXPECT_EQ(s.pages_rebuilt, 1u);
  EXPECT_EQ(s.gc_pages_lost, 0u);
  EXPECT_EQ(s.pages_lost_forever, 0u);
  // Rebuilt, not dropped: lba 3 still serves version 1 after its segment was cleaned.
  ASSERT_TRUE(h.CheckLba(kPrimaryView, 3, 1));
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    if (lba != 3) {
      ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 2));
    }
  }
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
}

TEST(ParityRebuildTest, PatrolRebuildsBeforeExpunging) {
  FtlConfig config = ParityConfig();
  config.patrol_enabled = true;
  config.patrol_pages_per_step = 4096;
  config.patrol_sleep_ms = 0;
  FtlHarness h(config);
  const uint64_t kLbas = 256;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const auto [victim_lba, victim_paddr] = VictimInClosedSegment(&h.ftl(), kStripe);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  Pump(&h, 8);
  const FtlStats& s = h.ftl().stats();
  EXPECT_EQ(s.pages_rebuilt, 1u);
  EXPECT_EQ(s.patrol_pages_dropped, 0u);
  EXPECT_EQ(s.pages_lost_forever, 0u);
  EXPECT_GE(s.patrol_segments_evacuated, 1u);  // The corrupt original is expunged.
  // Nothing was lost: the victim still reads its data, the media is clean.
  ASSERT_TRUE(h.CheckLba(kPrimaryView, victim_lba, 1));
  ASSERT_OK_AND_ASSIGN(FsckReport report,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(report.Clean()) << FormatFsckReport(report);
  EXPECT_EQ(report.crc_failures, 0u);
}

TEST(FsckParityTest, RebuildableCorruptionIsDirtyNotLostAndRepairs) {
  FtlHarness h(ParityConfig());  // Patrol disabled: nothing heals on its own.
  const uint64_t kLbas = 200;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const auto [victim_lba, victim_paddr] = VictimInClosedSegment(&h.ftl(), kStripe);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  // Dirty, but triaged as rebuildable: the stripe can still produce the page.
  ASSERT_OK_AND_ASSIGN(FsckReport dirty,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_FALSE(dirty.Clean());
  EXPECT_EQ(dirty.crc_failures, 1u);
  EXPECT_EQ(dirty.rebuilt_data_pages, 1u);
  EXPECT_EQ(dirty.lost_data_pages, 0u);
  EXPECT_EQ(dirty.parity_stripe, kStripe);  // Inferred from the media.

  // Repair (the fsck --repair hook) rebuilds rather than drops, and the data is
  // still there afterwards — the whole point of the parity layer.
  ASSERT_OK(h.ftl().ScrubAllBlocking(h.now()).status());
  ASSERT_OK_AND_ASSIGN(FsckReport clean,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(clean.Clean()) << FormatFsckReport(clean);
  EXPECT_EQ(clean.crc_failures, 0u);
  EXPECT_EQ(h.ftl().stats().pages_rebuilt, 1u);
  EXPECT_EQ(h.ftl().stats().patrol_pages_dropped, 0u);
  ASSERT_TRUE(h.CheckLba(kPrimaryView, victim_lba, 1));
}

TEST(ParityRebuildTest, AccumulatorSurvivesCrashReopen) {
  // A stripe that straddles a crash: members programmed before the reopen, parity
  // emitted after. RebuildFromDevice must restore the running XOR bit-exactly or the
  // eventual reconstruction fails its CRC check.
  FtlConfig config = TinyConfig();
  config.parity_stripe = kStripe;
  FtlHarness h(config);
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK(h.Write(1, 1));
  const uint64_t paddr_before = PaddrOf(&h.ftl(), 0);
  ASSERT_OK(h.CrashAndReopen());
  // Fill past several stripe boundaries so paddr_before's parity slot is written.
  for (uint64_t lba = 2; lba < 30; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_GT(h.ftl().log_manager().stats().parity_pages_written, 0u);

  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(paddr_before);
  ASSERT_TRUE(h.CheckLba(kPrimaryView, 0, 1));
  EXPECT_EQ(h.ftl().stats().pages_rebuilt, 1u);
  EXPECT_EQ(h.ftl().stats().pages_rebuild_failed, 0u);
}

TEST(ParityRebuildTest, ParityOffWritesNoParityAndOnIsHostTransparent) {
  // Same workload with the stripe off and on: identical logical contents, identical
  // snapshot sets; the off run leaves zero parity artifacts anywhere (stats, media,
  // rebuild counters), the on run pays only parity pages.
  auto run = [](uint64_t stripe) {
    FtlConfig config = TinyConfig();
    config.parity_stripe = stripe;
    auto h = std::make_unique<FtlHarness>(config);
    for (uint64_t lba = 0; lba < 36; ++lba) {
      IOSNAP_CHECK(h->Write(lba, 1).ok());
    }
    auto snap = h->Snapshot("mid");
    IOSNAP_CHECK(snap.ok());
    for (uint64_t lba = 0; lba < 24; ++lba) {
      IOSNAP_CHECK(h->Write(lba, 2).ok());
    }
    IOSNAP_CHECK(h->Trim(30, 4).ok());
    return std::make_pair(std::move(h), *snap);
  };
  auto [off, snap_off] = run(0);
  auto [on, snap_on] = run(kStripe);

  const FtlStats& so = off->ftl().stats();
  EXPECT_EQ(off->ftl().log_manager().stats().parity_pages_written, 0u);
  EXPECT_EQ(so.pages_rebuilt + so.pages_rebuild_failed + so.pages_lost_forever +
                so.pages_superseded,
            0u);
  EXPECT_GT(on->ftl().log_manager().stats().parity_pages_written, 0u);
  // No parity page on the off media: fsck finds nothing to infer a stripe from.
  ASSERT_OK_AND_ASSIGN(FsckReport off_report,
                       FsckDevice(&off->ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(off_report.Clean()) << FormatFsckReport(off_report);
  EXPECT_EQ(off_report.parity_stripe, 0u);
  ASSERT_OK_AND_ASSIGN(FsckReport on_report,
                       FsckDevice(&on->ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(on_report.Clean()) << FormatFsckReport(on_report);
  EXPECT_EQ(on_report.parity_stripe, kStripe);

  EXPECT_EQ(snap_off, snap_on);
  for (uint64_t lba = 0; lba < 36; ++lba) {
    const uint64_t version = lba < 24 ? 2 : (lba >= 30 && lba < 34 ? 0 : 1);
    ASSERT_TRUE(off->CheckLba(kPrimaryView, lba, version));
    ASSERT_TRUE(on->CheckLba(kPrimaryView, lba, version));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t view_off, off->Activate(snap_off));
  ASSERT_OK_AND_ASSIGN(uint32_t view_on, on->Activate(snap_on));
  for (uint64_t lba = 0; lba < 36; ++lba) {
    ASSERT_TRUE(off->CheckLba(view_off, lba, 1));
    ASSERT_TRUE(on->CheckLba(view_on, lba, 1));
  }
}

TEST(ParityRebuildTest, SeededCorruptionCampaignRebuildsWithZeroSilentCorruption) {
  // Silent program-time bit flips under a fixed seed: parity is accumulated from the
  // controller buffer *before* the cell corrupts, so the rebuild reproduces the bytes
  // the host wrote. Every read must return either exactly those bytes or a typed
  // kDataLoss — never plausible garbage.
  FtlConfig config = ParityConfig();
  FaultPlan plan;
  plan.seed = 11;
  plan.corrupt_ppm = 20000;  // ~2% of programs flip a stored bit.
  plan.ApplyTo(&config);
  FtlHarness h(config);
  const uint64_t kLbas = 400;
  std::map<uint64_t, uint64_t> version;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
    version[lba] = 1;
  }
  for (uint64_t lba = 0; lba < kLbas; lba += 3) {
    ASSERT_OK(h.Write(lba, 2));
    version[lba] = 2;
  }
  ASSERT_GT(h.ftl().device().stats().pages_corrupted, 0u);

  uint64_t typed_losses = 0;
  const uint64_t page_size = h.ftl().device().config().page_size_bytes;
  for (int round = 0; round < 2; ++round) {
    for (uint64_t lba = 0; lba < kLbas; ++lba) {
      std::vector<uint8_t> data;
      auto result = h.ftl().ReadView(kPrimaryView, lba, h.now(), &data);
      if (result.ok()) {
        h.AdvanceTo(result->CompletionNs());
        ASSERT_EQ(data, PageData(page_size, lba, version[lba]))
            << "silent corruption at lba " << lba;
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kDataLoss);
        ++typed_losses;
      }
    }
  }
  const FtlStats& s = h.ftl().stats();
  EXPECT_GT(s.pages_rebuilt, 0u) << "campaign never exercised a rebuild";
  EXPECT_EQ(s.user_read_errors, typed_losses);
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
}

}  // namespace
}  // namespace iosnap
