// Static wear leveling: cold segments must re-enter the erase rotation when the wear
// gap grows, and doing so must not disturb data or snapshot semantics.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

// Writes a cold region once, then churns a hot region for several device lifetimes.
// Returns (max - min) erase count over all segments.
uint64_t WearGapAfterHotColdChurn(uint64_t threshold, ReferenceModel* model,
                                  FtlHarness** harness_out, FtlConfig* config_out) {
  FtlConfig config = SmallConfig();
  config.wear_leveling_threshold = threshold;
  auto* h = new FtlHarness(config);
  uint64_t version = 0;

  // Cold region: written once, never touched again.
  for (uint64_t lba = 0; lba < 200; ++lba) {
    ++version;
    IOSNAP_CHECK(h->Write(lba, version).ok());
    model->Write(lba, version);
  }
  // Hot churn over a small disjoint region, many device lifetimes.
  Rng rng(13);
  for (uint64_t i = 0; i < config.nand.TotalPages() * 8; ++i) {
    const uint64_t lba = 300 + rng.NextBelow(32);
    ++version;
    IOSNAP_CHECK(h->Write(lba, version).ok());
    model->Write(lba, version);
    h->ftl().PumpBackground(h->now());
  }

  uint64_t min_erase = ~uint64_t{0};
  uint64_t max_erase = 0;
  for (uint64_t seg = 0; seg < config.nand.num_segments; ++seg) {
    min_erase = std::min(min_erase, h->ftl().device().EraseCount(seg));
    max_erase = std::max(max_erase, h->ftl().device().EraseCount(seg));
  }
  *harness_out = h;
  *config_out = config;
  return max_erase - min_erase;
}

TEST(WearLevelingTest, ReducesWearGapOnHotColdWorkload) {
  ReferenceModel model_off;
  FtlHarness* h_off = nullptr;
  FtlConfig config_off;
  const uint64_t gap_off = WearGapAfterHotColdChurn(0, &model_off, &h_off, &config_off);

  ReferenceModel model_on;
  FtlHarness* h_on = nullptr;
  FtlConfig config_on;
  const uint64_t gap_on = WearGapAfterHotColdChurn(4, &model_on, &h_on, &config_on);

  EXPECT_LT(gap_on, gap_off);
  EXPECT_GT(h_on->ftl().stats().gc_wear_level_cleans, 0u);
  EXPECT_EQ(h_off->ftl().stats().gc_wear_level_cleans, 0u);

  // Data integrity in both modes (cold region must have been migrated, not lost).
  EXPECT_TRUE(h_off->CheckView(kPrimaryView, model_off.current_state(), 200));
  EXPECT_TRUE(h_on->CheckView(kPrimaryView, model_on.current_state(), 200));
  delete h_off;
  delete h_on;
}

TEST(WearLevelingTest, CoexistsWithSnapshots) {
  FtlConfig config = SmallConfig();
  config.wear_leveling_threshold = 3;
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  for (uint64_t lba = 0; lba < 100; ++lba) {
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("cold"));
  model.Snapshot(snap);

  Rng rng(14);
  for (uint64_t i = 0; i < config.nand.TotalPages() * 6; ++i) {
    const uint64_t lba = 150 + rng.NextBelow(32);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
    h.ftl().PumpBackground(h.now());
  }
  // Wear leveling relocated snapshot-pinned cold data; the snapshot must be intact.
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 200));
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 200));
}

TEST(WearLevelingTest, RetiredSegmentsLeaveTheRotation) {
  // A segment that grows bad mid-churn must be retired — excluded from victim
  // selection and from MaxEraseCount — while cleaning and wear leveling keep
  // operating on the survivors.
  FtlConfig config = SmallConfig();
  config.wear_leveling_threshold = 4;
  FaultPlan plan;
  plan.bad_block_schedule = {{6, 2}};  // Segment 6 dies on its second erase.
  plan.ApplyTo(&config);
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;

  for (uint64_t lba = 0; lba < 200; ++lba) {
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
  }
  Rng rng(13);
  for (uint64_t i = 0; i < config.nand.TotalPages() * 8; ++i) {
    const uint64_t lba = 300 + rng.NextBelow(32);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
    h.ftl().PumpBackground(h.now());
  }

  EXPECT_TRUE(h.ftl().device().IsBadSegment(6));
  EXPECT_EQ(h.ftl().log_manager().segment_info(6).state, SegmentState::kRetired);
  EXPECT_GE(h.ftl().log_manager().stats().segments_retired, 1u);
  // The cleaner and wear leveler survived the retirement and kept working.
  EXPECT_GT(h.ftl().stats().gc_segments_cleaned, 0u);
  EXPECT_GT(h.ftl().stats().gc_wear_level_cleans, 0u);
  // The dead segment's frozen erase count no longer defines the wear ceiling.
  uint64_t live_max = 0;
  for (uint64_t seg = 0; seg < config.nand.num_segments; ++seg) {
    if (!h.ftl().device().IsBadSegment(seg)) {
      live_max = std::max(live_max, h.ftl().device().EraseCount(seg));
    }
  }
  EXPECT_EQ(h.ftl().device().MaxEraseCount(), live_max);

  // No data was lost to the retirement.
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 200));
}

}  // namespace
}  // namespace iosnap
