// Rate-limited snapshot activation (§5.6-5.7): correctness of the deferred map build,
// pacing behaviour, interference with foreground reads, and the segment-index extension.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(ActivationTest, BackgroundActivationCompletesViaPump) {
  FtlHarness h(SmallConfig());
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view,
                       h.ftl().BeginActivation(snap, RateLimit::Unlimited(), h.now()));
  EXPECT_FALSE(h.ftl().ActivationDone(view));
  // Reads against an in-flight activation are refused.
  EXPECT_EQ(h.ftl().ReadView(view, 0, h.now(), nullptr).status().code(),
            StatusCode::kFailedPrecondition);

  uint64_t t = h.now();
  for (int i = 0; i < 10000 && !h.ftl().ActivationDone(view); ++i) {
    t += UsToNs(100);
    h.ftl().PumpBackground(t);
  }
  ASSERT_TRUE(h.ftl().ActivationDone(view));
  h.AdvanceTo(t);
  EXPECT_TRUE(h.CheckLba(view, 5, 1));
}

TEST(ActivationTest, RateLimitStretchesActivationTime) {
  // Fig 9's trade-off: stricter pacing -> longer activation.
  auto activation_time = [](RateLimit limit) {
    FtlConfig config = SmallConfig();
    config.nand.num_segments = 128;  // A longer log makes the scan phase substantial.
    FtlHarness h(config);
    for (uint64_t lba = 0; lba < 2000; ++lba) {
      IOSNAP_CHECK(h.Write(lba, 1).ok());
    }
    auto snap = h.Snapshot("s");
    IOSNAP_CHECK(snap.ok());
    const uint64_t start = h.now();
    auto view = h.ftl().BeginActivation(*snap, limit, start);
    IOSNAP_CHECK(view.ok());
    uint64_t t = start;
    while (!h.ftl().ActivationDone(*view)) {
      t += UsToNs(10);
      h.ftl().PumpBackground(t);
    }
    return t - start;
  };

  const uint64_t unlimited = activation_time(RateLimit::Unlimited());
  const uint64_t limited = activation_time(RateLimit::Of(50, 5));
  const uint64_t strict = activation_time(RateLimit::Of(5, 5));
  EXPECT_LT(unlimited, limited);
  EXPECT_LT(limited, strict);
}

TEST(ActivationTest, ActivationScansWholeDeviceByDefault) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK(h.Activate(snap).status());
  // Every non-free segment was scanned; none skipped without the index extension.
  EXPECT_EQ(h.ftl().stats().activation_segments_skipped, 0u);
  EXPECT_GT(h.ftl().stats().activation_segments_scanned, 0u);
}

TEST(ActivationTest, SegmentIndexSkipsForeignSegments) {
  // Ablation A3: with the per-segment epoch summary, activation skips segments that hold
  // no lineage data. Write a lot after the snapshot so most segments are post-snapshot.
  FtlConfig config = SmallConfig();
  config.activation_segment_index = true;
  FtlHarness h(config);
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
    model.Write(lba, 1);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  model.Snapshot(snap);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_OK(h.Write(i % 10, i + 100));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_GT(h.ftl().stats().activation_segments_skipped, 0u);
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 10));
}

TEST(ActivationTest, ActivationInterferesWithForegroundReadsWhenUnthrottled) {
  // The Fig 9a effect: during an unthrottled activation, foreground read latency rises
  // well above the uncontended baseline.
  FtlConfig config = SmallConfig();
  config.nand.num_segments = 64;
  FtlHarness h(config);
  Rng rng(1);
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_OK(h.Write(rng.NextBelow(1000), i + 1));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));

  // Baseline read latency.
  uint64_t base_total = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(IoResult io, h.ftl().Read(rng.NextBelow(1000), h.now(), nullptr));
    h.AdvanceTo(io.CompletionNs());
    base_total += io.LatencyNs();
  }

  ASSERT_OK(h.ftl().BeginActivation(snap, RateLimit::Unlimited(), h.now()).status());
  uint64_t contended_total = 0;
  for (int i = 0; i < 20; ++i) {
    h.ftl().PumpBackground(h.now());
    ASSERT_OK_AND_ASSIGN(IoResult io, h.ftl().Read(rng.NextBelow(1000), h.now(), nullptr));
    h.AdvanceTo(io.CompletionNs());
    contended_total += io.LatencyNs();
  }
  EXPECT_GT(contended_total, base_total * 2);
}

TEST(ActivationTest, DeactivateDuringActivationCancelsCleanly) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view,
                       h.ftl().BeginActivation(snap, RateLimit::Of(1, 250), h.now()));
  ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  EXPECT_EQ(h.ftl().ActiveViewIds().size(), 1u);
  // The snapshot can be activated again afterwards.
  ASSERT_OK_AND_ASSIGN(uint32_t view2, h.Activate(snap));
  EXPECT_TRUE(h.CheckLba(view2, 0, 1));
}

TEST(ActivationTest, ActivationSurvivesConcurrentEmergencyCleaning) {
  // If emergency (inline) cleaning moves blocks mid-scan, the activation restarts its
  // pass and still produces the correct map.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  Rng rng(9);
  uint64_t version = 0;
  const uint64_t lba_space = 40;
  for (uint64_t i = 0; i < 150; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  model.Snapshot(snap);

  // Slow activation, pumped while heavy foreground churn forces inline cleaning.
  ASSERT_OK_AND_ASSIGN(uint32_t view,
                       h.ftl().BeginActivation(snap, RateLimit::Of(20, 1), h.now()));
  for (uint64_t i = 0; i < config.nand.TotalPages() * 2 || !h.ftl().ActivationDone(view);
       ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
    h.ftl().PumpBackground(h.now());
    if (i > config.nand.TotalPages() * 16) {
      break;  // Safety valve.
    }
  }
  ASSERT_TRUE(h.ftl().ActivationDone(view));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space));
}

}  // namespace
}  // namespace iosnap
