#include "src/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace iosnap {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, MeanMinMax) {
  OnlineStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(7.0), 1e-9);
}

TEST(LatencyHistogramTest, PercentilesApproximateSamples) {
  LatencyHistogram hist;
  for (uint64_t i = 1; i <= 1000; ++i) {
    hist.Add(i * 1000);  // 1us .. 1000us
  }
  EXPECT_EQ(hist.count(), 1000u);
  // Log-bucketed percentiles are accurate to within one bucket (~7%).
  EXPECT_NEAR(static_cast<double>(hist.PercentileNs(50.0)), 500e3, 500e3 * 0.10);
  EXPECT_NEAR(static_cast<double>(hist.PercentileNs(99.0)), 990e3, 990e3 * 0.10);
  EXPECT_EQ(hist.MaxNs(), 1000000u);
  EXPECT_NEAR(hist.MeanNs(), 500500.0, 1.0);
}

TEST(LatencyHistogramTest, ZeroAndHugeValues) {
  LatencyHistogram hist;
  hist.Add(0);
  hist.Add(~uint64_t{0});
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_GT(hist.PercentileNs(100.0), 0u);
}

TEST(LatencyHistogramTest, EmptyPercentileIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.PercentileNs(0.0), 0u);
  EXPECT_EQ(hist.PercentileNs(50.0), 0u);
  EXPECT_EQ(hist.PercentileNs(100.0), 0u);
  EXPECT_EQ(hist.MaxNs(), 0u);
  EXPECT_EQ(hist.MeanNs(), 0.0);
}

TEST(LatencyHistogramTest, PercentileZeroReportsSmallestBucket) {
  LatencyHistogram hist;
  hist.Add(1000000);  // 1 ms; nothing recorded below it.
  hist.Add(2000000);
  // p=0 must land on the first occupied bucket, not bucket 0's value of 1 ns.
  EXPECT_NEAR(static_cast<double>(hist.PercentileNs(0.0)), 1e6, 1e6 / 32.0);
  // Out-of-range p clamps.
  EXPECT_EQ(hist.PercentileNs(-5.0), hist.PercentileNs(0.0));
  EXPECT_EQ(hist.PercentileNs(250.0), hist.PercentileNs(100.0));
}

TEST(LatencyHistogramTest, SingleSampleAllPercentilesAgree) {
  LatencyHistogram hist;
  hist.Add(4096);  // Exact bucket boundary (power of two).
  const uint64_t p0 = hist.PercentileNs(0.0);
  EXPECT_EQ(hist.PercentileNs(50.0), p0);
  EXPECT_EQ(hist.PercentileNs(100.0), p0);
  // Within the documented 1/32 relative error for values >= 32 ns.
  EXPECT_NEAR(static_cast<double>(p0), 4096.0, 4096.0 / 32.0);
}

TEST(LatencyHistogramTest, SubBucketBoundaryErrorBound) {
  // Values >= 32 ns: midpoint representative keeps relative error <= 1/32.
  for (const uint64_t ns : {32ull, 33ull, 63ull, 1023ull, 1025ull, 65535ull, 65537ull}) {
    LatencyHistogram hist;
    hist.Add(ns);
    const double got = static_cast<double>(hist.PercentileNs(50.0));
    EXPECT_NEAR(got, static_cast<double>(ns), static_cast<double>(ns) / 32.0)
        << "value " << ns;
  }
  // Below 32 ns: whole power-of-two buckets; the lower edge is reported.
  LatencyHistogram hist;
  hist.Add(31);
  EXPECT_EQ(hist.PercentileNs(50.0), 16u);
}

TEST(TimelineTest, BucketizeAggregates) {
  Timeline tl;
  tl.Add(SecToNs(0), 10.0);
  tl.Add(SecToNs(0) + MsToNs(100), 20.0);
  tl.Add(SecToNs(1), 30.0);
  tl.Add(SecToNs(3), 40.0);
  const auto buckets = tl.Bucketize(SecToNs(1));
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 15.0);
  EXPECT_DOUBLE_EQ(buckets[0].max, 20.0);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].mean, 30.0);
  EXPECT_EQ(buckets[2].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[2].mean, 40.0);
}

TEST(TimelineTest, BucketizeEmpty) {
  Timeline tl;
  EXPECT_TRUE(tl.empty());
  EXPECT_TRUE(tl.Bucketize(SecToNs(1)).empty());
  // Degenerate bucket width never divides by zero.
  tl.Add(SecToNs(1), 5.0);
  EXPECT_TRUE(tl.Bucketize(0).empty());
}

TEST(TimelineTest, BucketizeSingleSample) {
  Timeline tl;
  tl.Add(MsToNs(2500), 7.0);
  const auto buckets = tl.Bucketize(SecToNs(1));
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].t_ns, SecToNs(2));  // Aligned down to the bucket grid.
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 7.0);
  EXPECT_DOUBLE_EQ(buckets[0].max, 7.0);
}

TEST(TimelineTest, BucketizeUnalignedStart) {
  // First sample far from t=0: bucketizing must start at its aligned bucket, not emit
  // thousands of leading empties.
  Timeline tl;
  tl.Add(SecToNs(100) + MsToNs(750), 1.0);
  tl.Add(SecToNs(102) + MsToNs(1), 3.0);
  const auto buckets = tl.Bucketize(SecToNs(1));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].t_ns, SecToNs(100));
  EXPECT_EQ(buckets[1].t_ns, SecToNs(102));
  EXPECT_DOUBLE_EQ(buckets[1].mean, 3.0);
}

TEST(TimelineTest, CsvHasHeaderAndRows) {
  Timeline tl;
  tl.Add(0, 1.0);
  tl.Add(SecToNs(2), 3.0);
  const std::string csv = tl.ToCsv(SecToNs(1), "t_sec", "lat_us");
  EXPECT_NE(csv.find("t_sec,lat_us_mean,lat_us_max,count"), std::string::npos);
  EXPECT_NE(csv.find("\n0,1,1,1\n"), std::string::npos);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(UsToNs(3), 3000u);
  EXPECT_EQ(MsToNs(2), 2000000u);
  EXPECT_EQ(SecToNs(1), 1000000000u);
  EXPECT_DOUBLE_EQ(NsToUs(1500), 1.5);
  // 1 GB moved in 1 second = 1000 MB/s.
  EXPECT_NEAR(MbPerSec(1000000000ull, SecToNs(1)), 1000.0, 1e-9);
}

}  // namespace
}  // namespace iosnap
