#include "src/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace iosnap {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, MeanMinMax) {
  OnlineStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(7.0), 1e-9);
}

TEST(LatencyHistogramTest, PercentilesApproximateSamples) {
  LatencyHistogram hist;
  for (uint64_t i = 1; i <= 1000; ++i) {
    hist.Add(i * 1000);  // 1us .. 1000us
  }
  EXPECT_EQ(hist.count(), 1000u);
  // Log-bucketed percentiles are accurate to within one bucket (~7%).
  EXPECT_NEAR(static_cast<double>(hist.PercentileNs(50.0)), 500e3, 500e3 * 0.10);
  EXPECT_NEAR(static_cast<double>(hist.PercentileNs(99.0)), 990e3, 990e3 * 0.10);
  EXPECT_EQ(hist.MaxNs(), 1000000u);
  EXPECT_NEAR(hist.MeanNs(), 500500.0, 1.0);
}

TEST(LatencyHistogramTest, ZeroAndHugeValues) {
  LatencyHistogram hist;
  hist.Add(0);
  hist.Add(~uint64_t{0});
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_GT(hist.PercentileNs(100.0), 0u);
}

TEST(TimelineTest, BucketizeAggregates) {
  Timeline tl;
  tl.Add(SecToNs(0), 10.0);
  tl.Add(SecToNs(0) + MsToNs(100), 20.0);
  tl.Add(SecToNs(1), 30.0);
  tl.Add(SecToNs(3), 40.0);
  const auto buckets = tl.Bucketize(SecToNs(1));
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 15.0);
  EXPECT_DOUBLE_EQ(buckets[0].max, 20.0);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].mean, 30.0);
  EXPECT_EQ(buckets[2].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[2].mean, 40.0);
}

TEST(TimelineTest, CsvHasHeaderAndRows) {
  Timeline tl;
  tl.Add(0, 1.0);
  tl.Add(SecToNs(2), 3.0);
  const std::string csv = tl.ToCsv(SecToNs(1), "t_sec", "lat_us");
  EXPECT_NE(csv.find("t_sec,lat_us_mean,lat_us_max,count"), std::string::npos);
  EXPECT_NE(csv.find("\n0,1,1,1\n"), std::string::npos);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(UsToNs(3), 3000u);
  EXPECT_EQ(MsToNs(2), 2000000u);
  EXPECT_EQ(SecToNs(1), 1000000000u);
  EXPECT_DOUBLE_EQ(NsToUs(1500), 1.5);
  // 1 GB moved in 1 second = 1000 MB/s.
  EXPECT_NEAR(MbPerSec(1000000000ull, SecToNs(1)), 1000.0, 1e-9);
}

}  // namespace
}  // namespace iosnap
