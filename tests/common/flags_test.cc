#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace iosnap {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  Flags flags = ParseArgs({"--ops=100", "--verbose", "--rate=0.5", "--name=abc"});
  EXPECT_EQ(flags.GetInt("ops", 0), 100);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "abc");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_TRUE(flags.GetBool("missing", true));
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, PositionalArgsPreserved) {
  Flags flags = ParseArgs({"cmd", "--x=1", "file.txt"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"cmd", "file.txt"}));
}

TEST(FlagsTest, BoolValueSpellings) {
  Flags flags = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(FlagsTest, UnknownFlagDetection) {
  Flags flags = ParseArgs({"--ops=1", "--typo=2"});
  const auto unknown = flags.UnknownFlags({"ops", "other"});
  EXPECT_EQ(unknown, (std::vector<std::string>{"typo"}));
}

}  // namespace
}  // namespace iosnap
