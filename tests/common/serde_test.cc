#include "src/common/serde.h"

#include <gtest/gtest.h>

namespace iosnap {
namespace {

TEST(SerdeTest, RoundTripScalars) {
  std::vector<uint8_t> buf;
  PutU8(&buf, 0xab);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutString(&buf, "hello");

  size_t offset = 0;
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s;
  ASSERT_TRUE(GetU8(buf, &offset, &u8).ok());
  ASSERT_TRUE(GetU32(buf, &offset, &u32).ok());
  ASSERT_TRUE(GetU64(buf, &offset, &u64).ok());
  ASSERT_TRUE(GetString(buf, &offset, &s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(offset, buf.size());
}

TEST(SerdeTest, TruncationIsDataLoss) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 7);
  buf.pop_back();
  size_t offset = 0;
  uint32_t v = 0;
  EXPECT_EQ(GetU32(buf, &offset, &v).code(), StatusCode::kDataLoss);
}

TEST(SerdeTest, TruncatedStringBody) {
  std::vector<uint8_t> buf;
  PutString(&buf, "abcdef");
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  std::string s;
  EXPECT_EQ(GetString(buf, &offset, &s).code(), StatusCode::kDataLoss);
}

TEST(SerdeTest, EmptyString) {
  std::vector<uint8_t> buf;
  PutString(&buf, "");
  size_t offset = 0;
  std::string s = "junk";
  ASSERT_TRUE(GetString(buf, &offset, &s).ok());
  EXPECT_EQ(s, "");
}

}  // namespace
}  // namespace iosnap
