#include "src/common/serde.h"

#include <gtest/gtest.h>

#include "src/common/crc32.h"

namespace iosnap {
namespace {

TEST(SerdeTest, RoundTripScalars) {
  std::vector<uint8_t> buf;
  PutU8(&buf, 0xab);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutString(&buf, "hello");

  size_t offset = 0;
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s;
  ASSERT_TRUE(GetU8(buf, &offset, &u8).ok());
  ASSERT_TRUE(GetU32(buf, &offset, &u32).ok());
  ASSERT_TRUE(GetU64(buf, &offset, &u64).ok());
  ASSERT_TRUE(GetString(buf, &offset, &s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(offset, buf.size());
}

TEST(SerdeTest, TruncationIsDataLoss) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 7);
  buf.pop_back();
  size_t offset = 0;
  uint32_t v = 0;
  EXPECT_EQ(GetU32(buf, &offset, &v).code(), StatusCode::kDataLoss);
}

TEST(SerdeTest, TruncatedStringBody) {
  std::vector<uint8_t> buf;
  PutString(&buf, "abcdef");
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  std::string s;
  EXPECT_EQ(GetString(buf, &offset, &s).code(), StatusCode::kDataLoss);
}

TEST(SerdeTest, EmptyString) {
  std::vector<uint8_t> buf;
  PutString(&buf, "");
  size_t offset = 0;
  std::string s = "junk";
  ASSERT_TRUE(GetString(buf, &offset, &s).ok());
  EXPECT_EQ(s, "");
}

TEST(Crc32Test, KnownVector) {
  // The standard IEEE CRC-32 check value.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32({reinterpret_cast<const uint8_t*>(s.data()), s.size()}), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(300);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32(data);
  const uint32_t split =
      Crc32Extend(Crc32(std::span<const uint8_t>(data).subspan(0, 100)),
                  std::span<const uint8_t>(data).subspan(100));
  EXPECT_EQ(whole, split);
}

TEST(Crc32Test, SingleBitFlipChangesValue) {
  std::vector<uint8_t> data(64, 0x5a);
  const uint32_t before = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    data[byte] ^= 0x10;
    EXPECT_NE(Crc32(data), before);
    data[byte] ^= 0x10;
  }
  EXPECT_EQ(Crc32(data), before);
}

}  // namespace
}  // namespace iosnap
