#include "src/common/status.h"

#include <gtest/gtest.h>

namespace iosnap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

Status FailThrough() {
  RETURN_IF_ERROR(Internal("inner"));
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kInternal);
}

StatusOr<int> ProduceValue() { return 5; }

Status UseAssign(int* out) {
  ASSIGN_OR_RETURN(*out, ProduceValue());
  return OkStatus();
}

TEST(StatusMacroTest, AssignOrReturnAssigns) {
  int out = 0;
  EXPECT_TRUE(UseAssign(&out).ok());
  EXPECT_EQ(out, 5);
}

}  // namespace
}  // namespace iosnap
