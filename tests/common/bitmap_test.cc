#include "src/common/bitmap.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iosnap {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.CountOnes(), 0u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(bm.Test(i));
  }
}

TEST(BitmapTest, SetClearTest) {
  Bitmap bm(130);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_EQ(bm.CountOnes(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.CountOnes(), 3u);
}

TEST(BitmapTest, CountOnesInRange) {
  Bitmap bm(256);
  for (size_t i = 10; i < 200; i += 3) {
    bm.Set(i);
  }
  size_t expected = 0;
  for (size_t i = 50; i < 150; ++i) {
    expected += bm.Test(i) ? 1 : 0;
  }
  EXPECT_EQ(bm.CountOnesInRange(50, 150), expected);
  EXPECT_EQ(bm.CountOnesInRange(0, 256), bm.CountOnes());
  EXPECT_EQ(bm.CountOnesInRange(100, 100), 0u);
}

TEST(BitmapTest, FindFirstSet) {
  Bitmap bm(300);
  EXPECT_EQ(bm.FindFirstSet(), 300u);
  bm.Set(7);
  bm.Set(130);
  bm.Set(299);
  EXPECT_EQ(bm.FindFirstSet(), 7u);
  EXPECT_EQ(bm.FindFirstSet(8), 130u);
  EXPECT_EQ(bm.FindFirstSet(131), 299u);
  EXPECT_EQ(bm.FindFirstSet(300), 300u);
}

TEST(BitmapTest, OrWith) {
  Bitmap a(128);
  Bitmap b(128);
  a.Set(1);
  a.Set(100);
  b.Set(2);
  b.Set(100);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_TRUE(a.Test(100));
  EXPECT_EQ(a.CountOnes(), 3u);
}

TEST(BitmapTest, ResetClearsEverything) {
  Bitmap bm(64);
  for (size_t i = 0; i < 64; i += 2) {
    bm.Set(i);
  }
  bm.Reset();
  EXPECT_EQ(bm.CountOnes(), 0u);
  EXPECT_EQ(bm.size(), 64u);
}

TEST(BitmapTest, RandomizedAgainstReference) {
  constexpr size_t kBits = 777;
  Bitmap bm(kBits);
  std::vector<bool> ref(kBits, false);
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const size_t bit = rng.NextBelow(kBits);
    if (rng.NextBool(0.5)) {
      bm.Set(bit);
      ref[bit] = true;
    } else {
      bm.Clear(bit);
      ref[bit] = false;
    }
  }
  size_t expected = 0;
  for (size_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(bm.Test(i), ref[i]) << "bit " << i;
    expected += ref[i] ? 1 : 0;
  }
  EXPECT_EQ(bm.CountOnes(), expected);
}

}  // namespace
}  // namespace iosnap
