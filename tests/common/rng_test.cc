#include "src/common/rng.h"

#include <gtest/gtest.h>

namespace iosnap {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

}  // namespace
}  // namespace iosnap
