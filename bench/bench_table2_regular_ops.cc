// Table 2: Regular operations — vanilla FTL vs ioSnap.
//
// The paper's headline sanity check: with no snapshot activity, ioSnap's sequential and
// random read/write throughput is indistinguishable from the vanilla driver. The paper
// issued 16 GB of 4K I/O with two threads on a 1.2 TB device; we issue a scaled volume
// on the 3 GiB simulated device at the same queue depths and repeat 5 times.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

constexpr uint64_t kRepeats = 5;
constexpr uint64_t kIoPages = 64 * 1024;  // 256 MiB of 4K I/O per measurement.
constexpr uint64_t kWriteQd = 64;         // Async writes (paper: 2 threads, async).
constexpr uint64_t kSeqReadQd = 64;       // Prefetch-friendly sequential reads.
constexpr uint64_t kRandReadQd = 2;       // Paper: two reader threads, sync reads.

double RunCase(bool snapshots_enabled, const std::string& pattern, IoKind kind,
               uint64_t seed, uint64_t batch = 0) {
  FtlConfig config = BenchConfig();
  config.snapshots_enabled = snapshots_enabled;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  if (kind == IoKind::kRead) {
    Prefill(ftl.get(), &clock, lba_space);
  }

  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);
  std::unique_ptr<Workload> workload;
  if (pattern == "seq") {
    workload = std::make_unique<SequentialWorkload>(kind, 0, lba_space, /*wrap=*/true);
  } else {
    workload = std::make_unique<RandomWorkload>(kind, lba_space, seed);
  }

  RunOptions options;
  if (batch > 0) {
    options.batch = batch;  // Vectored submission through WriteV/ReadV.
  } else if (kind == IoKind::kWrite) {
    options.queue_depth = kWriteQd;
  } else {
    options.queue_depth = pattern == "seq" ? kSeqReadQd : kRandReadQd;
  }
  const uint64_t start = clock.NowNs();
  auto result = runner.Run(workload.get(), kIoPages, options);
  IOSNAP_CHECK(result.ok());
  const uint64_t end = std::max(result->drain_end_ns, clock.NowNs());
  // With --metrics_out the file reflects the last case measured (each case rebuilds
  // the device, so a shared registry would dangle).
  BenchDumpMetrics(*ftl);
  return MbPerSec(result->bytes, end - start);
}

void Row(const char* label, const std::string& pattern, IoKind kind) {
  Measurement vanilla;
  Measurement iosnap;
  for (uint64_t rep = 0; rep < kRepeats; ++rep) {
    vanilla.Add(RunCase(false, pattern, kind, 1000 + rep));
    iosnap.Add(RunCase(true, pattern, kind, 1000 + rep));
  }
  std::printf("%-18s %s   %s\n", label, vanilla.Format("MB/s").c_str(),
              iosnap.Format("MB/s").c_str());
  // Virtual-time MB/s is deterministic across hosts: the regression-gate anchor.
  BenchRecord("table2." + BenchSlug(label) + ".vanilla_mbps", vanilla.stats.mean());
  BenchRecord("table2." + BenchSlug(label) + ".iosnap_mbps", iosnap.stats.mean());
}

// Same patterns on ioSnap via vectored submission (--batch), one column per size.
void BatchRow(const char* label, const std::string& pattern, IoKind kind,
              const std::vector<uint64_t>& batches) {
  std::printf("%-18s", label);
  for (uint64_t batch : batches) {
    Measurement m;
    for (uint64_t rep = 0; rep < kRepeats; ++rep) {
      m.Add(RunCase(true, pattern, kind, 1000 + rep, batch));
    }
    std::printf("  %9.2f", m.stats.mean());
    BenchRecord("table2." + BenchSlug(label) + ".batch" + std::to_string(batch) +
                    "_mbps",
                m.stats.mean());
  }
  std::printf("  MB/s\n");
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Table 2: Regular operations (4K I/O, 256 MiB per run, 5 runs)",
              "ioSnap within noise of vanilla on all four patterns");
  std::printf("%-18s %-24s %-24s\n", "", "Vanilla", "ioSnap");
  PrintRule();
  Row("Sequential Write", "seq", IoKind::kWrite);
  Row("Random Write", "rand", IoKind::kWrite);
  Row("Sequential Read", "seq", IoKind::kRead);
  Row("Random Read", "rand", IoKind::kRead);
  PrintRule();
  std::printf("(paper, 1.2TB testbed: seq write 1617 vs 1615; rand write 1375 vs 1380;\n"
              " seq read 1238 vs 1240; rand read 312 vs 310 MB/s)\n");

  const std::vector<uint64_t> batches = {1, 8, 32};
  std::printf("\nioSnap, vectored submission (--batch):\n");
  std::printf("%-18s", "");
  for (uint64_t b : batches) {
    std::printf("  batch=%-4llu", static_cast<unsigned long long>(b));
  }
  std::printf("\n");
  PrintRule();
  BatchRow("Sequential Write", "seq", IoKind::kWrite, batches);
  BatchRow("Random Write", "rand", IoKind::kWrite, batches);
  BatchRow("Sequential Read", "seq", IoKind::kRead, batches);
  BatchRow("Random Read", "rand", IoKind::kRead, batches);
  BenchFinish();
  return 0;
}
