// Wall-clock microbenchmarks (google-benchmark) of the host-side data structures on the
// FTL's critical path: the B+tree forward map, the bitmap primitives, and the per-epoch
// CoW validity map. These are the only benchmarks in the suite that measure real CPU
// time — everything device-related runs on the virtual clock.

#include <benchmark/benchmark.h>

#include "src/common/bitmap.h"
#include "src/common/rng.h"
#include "src/ftl/btree.h"
#include "src/ftl/validity_map.h"

namespace iosnap {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree;
    state.ResumeTiming();
    for (uint64_t i = 0; i < n; ++i) {
      tree.Insert(rng.NextBelow(1u << 30), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1 << 12)->Arg(1 << 16);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  BPlusTree tree;
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t k = rng.NextBelow(1u << 30);
    keys.push_back(k);
    tree.Insert(k, i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1 << 16)->Arg(1 << 20);

void BM_BPlusTreeBulkLoad(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t i = 0; i < n; ++i) {
    pairs.emplace_back(i * 3, i);
  }
  for (auto _ : state) {
    BPlusTree tree = BPlusTree::BulkLoad(pairs);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeBulkLoad)->Arg(1 << 16);

void BM_BitmapCountRange(benchmark::State& state) {
  Bitmap bitmap(1 << 20);
  Rng rng(3);
  for (int i = 0; i < (1 << 18); ++i) {
    bitmap.Set(rng.NextBelow(1 << 20));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.CountOnesInRange(1000, (1 << 20) - 1000));
  }
}
BENCHMARK(BM_BitmapCountRange);

void BM_ValidityMergeRange(benchmark::State& state) {
  const auto epochs = static_cast<uint32_t>(state.range(0));
  ValidityMap vm(1 << 20, 8192);
  vm.CreateEpoch(0);
  Rng rng(4);
  for (int i = 0; i < (1 << 16); ++i) {
    vm.SetValid(0, rng.NextBelow(1 << 20));
  }
  std::vector<uint32_t> all = {0};
  for (uint32_t e = 1; e < epochs; ++e) {
    vm.ForkEpoch(e, e - 1);
    for (int i = 0; i < 1024; ++i) {
      vm.SetValid(e, rng.NextBelow(1 << 20));
    }
    all.push_back(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.CountValidInRange(all, 0, 1 << 14));
  }
}
BENCHMARK(BM_ValidityMergeRange)->Arg(1)->Arg(4)->Arg(16);

void BM_ValidityCowFork(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ValidityMap vm(1 << 20, 8192);
    vm.CreateEpoch(0);
    Rng rng(5);
    for (int i = 0; i < (1 << 14); ++i) {
      vm.SetValid(0, rng.NextBelow(1 << 20));
    }
    state.ResumeTiming();
    vm.ForkEpoch(1, 0);  // The snapshot-create critical-path cost.
    benchmark::DoNotOptimize(vm.HasEpoch(1));
  }
}
BENCHMARK(BM_ValidityCowFork);

}  // namespace
}  // namespace iosnap

BENCHMARK_MAIN();
