// Wall-clock microbenchmarks (google-benchmark) of the host-side data structures on the
// FTL's critical path: the B+tree forward map, the bitmap primitives, and the per-epoch
// CoW validity map. These are the only benchmarks in the suite that measure real CPU
// time — everything device-related runs on the virtual clock.

#include <benchmark/benchmark.h>

#include "src/common/bitmap.h"
#include "src/common/rng.h"
#include "src/ftl/btree.h"
#include "src/ftl/validity_map.h"

namespace iosnap {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree;
    state.ResumeTiming();
    for (uint64_t i = 0; i < n; ++i) {
      tree.Insert(rng.NextBelow(1u << 30), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1 << 12)->Arg(1 << 16);

// Batched map updates: the forward-map half of the vectored write path. Random keys are
// the adversarial case (every probe a fresh descent); the run-of-8 variant mimics an FTL
// absorbing mostly-sequential user writes, where the memoized descent amortizes best.
void BM_BPlusTreeInsertBatch(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  const auto batch = static_cast<uint64_t>(state.range(1));
  const bool runs = state.range(2) != 0;
  Rng rng(1);
  std::vector<std::pair<uint64_t, uint64_t>> entries(batch);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree;
    state.ResumeTiming();
    uint64_t i = 0;
    while (i < n) {
      for (uint64_t j = 0; j < batch; ++j) {
        uint64_t key;
        if (runs) {
          // Runs of 8 consecutive LBAs at random offsets.
          key = (j % 8 == 0) ? rng.NextBelow(1u << 30) : entries[j - 1].first + 1;
        } else {
          key = rng.NextBelow(1u << 30);
        }
        entries[j] = {key, i + j};
      }
      tree.InsertBatch(entries, nullptr);
      i += batch;
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeInsertBatch)
    ->ArgsProduct({{1 << 16}, {1, 8, 32, 256}, {0}})
    ->ArgsProduct({{1 << 16}, {32}, {1}});

void BM_BPlusTreeLookup(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  BPlusTree tree;
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t k = rng.NextBelow(1u << 30);
    keys.push_back(k);
    tree.Insert(k, i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1 << 16)->Arg(1 << 20);

void BM_BPlusTreeBulkLoad(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t i = 0; i < n; ++i) {
    pairs.emplace_back(i * 3, i);
  }
  for (auto _ : state) {
    BPlusTree tree = BPlusTree::BulkLoad(pairs);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeBulkLoad)->Arg(1 << 16);

void BM_BitmapCountRange(benchmark::State& state) {
  Bitmap bitmap(1 << 20);
  Rng rng(3);
  for (int i = 0; i < (1 << 18); ++i) {
    bitmap.Set(rng.NextBelow(1 << 20));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.CountOnesInRange(1000, (1 << 20) - 1000));
  }
}
BENCHMARK(BM_BitmapCountRange);

void BM_ValidityMergeRange(benchmark::State& state) {
  const auto epochs = static_cast<uint32_t>(state.range(0));
  ValidityMap vm(1 << 20, 8192);
  vm.CreateEpoch(0);
  Rng rng(4);
  for (int i = 0; i < (1 << 16); ++i) {
    vm.SetValid(0, rng.NextBelow(1 << 20));
  }
  std::vector<uint32_t> all = {0};
  for (uint32_t e = 1; e < epochs; ++e) {
    vm.ForkEpoch(e, e - 1);
    for (int i = 0; i < 1024; ++i) {
      vm.SetValid(e, rng.NextBelow(1 << 20));
    }
    all.push_back(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.CountValidInRange(all, 0, 1 << 14));
  }
}
BENCHMARK(BM_ValidityMergeRange)->Arg(1)->Arg(4)->Arg(16);

// Batched bit flips: the validity half of the vectored write path. Each batch clears one
// random bit and sets another (the overwrite pattern), grouped by chunk inside
// ApplyBatch so per-chunk CoW resolution runs once per touched chunk, not once per bit.
void BM_ValidityApplyBatch(benchmark::State& state) {
  const auto batch = static_cast<size_t>(state.range(0));
  ValidityMap vm(1 << 20, 8192);
  vm.CreateEpoch(0);
  Rng rng(6);
  for (int i = 0; i < (1 << 16); ++i) {
    vm.SetValid(0, rng.NextBelow(1 << 20));
  }
  std::vector<ValidityMap::BitOp> ops(2 * batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      ops[2 * i] = {rng.NextBelow(1 << 20), false, 0};
      ops[2 * i + 1] = {rng.NextBelow(1 << 20), true, 0};
    }
    vm.ApplyBatch(0, ops);
    benchmark::DoNotOptimize(ops.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * batch));
}
BENCHMARK(BM_ValidityApplyBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(256);

void BM_ValidityCowFork(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ValidityMap vm(1 << 20, 8192);
    vm.CreateEpoch(0);
    Rng rng(5);
    for (int i = 0; i < (1 << 14); ++i) {
      vm.SetValid(0, rng.NextBelow(1 << 20));
    }
    state.ResumeTiming();
    vm.ForkEpoch(1, 0);  // The snapshot-create critical-path cost.
    benchmark::DoNotOptimize(vm.HasEpoch(1));
  }
}
BENCHMARK(BM_ValidityCowFork);

}  // namespace
}  // namespace iosnap

BENCHMARK_MAIN();
