// Table 4: Overheads of segment cleaning with snapshots present.
//
// A foreground thread issues 4K random writes filling several segments while 0, 1 or 2
// snapshots are created part-way; then the cleaner is forced over the written segments.
// The paper reports overall cleaning time roughly flat with snapshot count, while the
// validity-bitmap merge component grows with the number of epochs to merge.

#include <set>

#include "bench/bench_common.h"

namespace iosnap {
namespace {

struct Row {
  const char* label;
  bool snapshots_enabled;
  int snapshot_count;
};

// Write indices at which snapshots are created. The first two match the paper's rows
// (and the historical output of this bench); additional dormant snapshots land between
// them so that large snapshot counts still pin the early segments.
std::set<uint64_t> SnapshotPoints(int count, uint64_t total_writes) {
  std::set<uint64_t> points;
  if (count >= 1) {
    points.insert(total_writes / 8);
  }
  if (count >= 2) {
    points.insert(total_writes / 5);
  }
  for (int k = 3; k <= count; ++k) {
    points.insert(total_writes / 8 + static_cast<uint64_t>(k - 2) * (total_writes / 100));
  }
  IOSNAP_CHECK(points.size() == static_cast<size_t>(count));
  return points;
}

void RunRow(const Row& row) {
  FtlConfig config = BenchConfigSmall();
  config.snapshots_enabled = row.snapshots_enabled;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  // ~5 segments of random-write churn over a working set small enough to leave plenty
  // of invalid (and snapshot-pinned) data in the victim segments.
  const uint64_t lba_space = config.nand.pages_per_segment * 2;
  const uint64_t total_writes = config.nand.pages_per_segment * 5;
  const std::set<uint64_t> snap_points = SnapshotPoints(row.snapshot_count, total_writes);
  Rng rng(41);
  for (uint64_t i = 0; i < total_writes; ++i) {
    auto io = ftl->Write(rng.NextBelow(lba_space), {}, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
    // Snapshots land while the early segments are still being written.
    if (snap_points.contains(i)) {
      auto s = ftl->CreateSnapshot("t4", clock.NowNs());
      IOSNAP_CHECK(s.ok());
      clock.AdvanceTo(s->io.CompletionNs());
    }
  }

  // Force-clean four victims and measure.
  const uint64_t merge_before = ftl->stats().gc_merge_host_ns;
  const uint64_t t_start = clock.NowNs();
  for (int i = 0; i < 4; ++i) {
    auto finish = ftl->ForceCleanSegment(clock.NowNs());
    IOSNAP_CHECK(finish.ok());
    clock.AdvanceTo(*finish);
  }
  const uint64_t overall_ns = clock.NowNs() - t_start;
  const uint64_t merge_ns = ftl->stats().gc_merge_host_ns - merge_before;

  const uint64_t copied = ftl->stats().gc_pages_copied;
  std::printf("%-12s %16.2f %18.3f %14llu %17.1f\n", row.label, NsToMs(overall_ns),
              NsToMs(merge_ns), static_cast<unsigned long long>(copied),
              copied > 0 ? NsToUs(overall_ns / copied) : 0.0);
  // With --metrics_out the file reflects the last row measured.
  BenchDumpMetrics(*ftl);
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Table 4: segment-cleaning overheads vs snapshot count",
              "overall time roughly flat; validity-merge time grows with snapshots");
  std::printf("%-12s %16s %18s %14s %17s\n", "snapshots", "overall (ms)",
              "validity merge(ms)", "pages copied", "us/copied page");
  PrintRule();
  RunRow({"Vanilla (0)", false, 0});
  RunRow({"0", true, 0});
  RunRow({"1", true, 1});
  RunRow({"2", true, 2});
  RunRow({"4", true, 4});
  RunRow({"8", true, 8});
  PrintRule();
  std::printf("(paper: overall 10.4-10.8 s flat; merge 113 -> 205 ms as snapshots grow.\n"
              " Here overall grows only with the extra snapshot data moved — which the\n"
              " paper excludes as overhead — so the per-page cost column is the flat one.)\n");
  BenchFinish();
  return 0;
}
