// Vectored-submission throughput: one workload, swept over --batch ∈ {1, 8, 32}.
//
// Measures what the vectored path (Ftl::WriteV/ReadV scheduling a whole batch across
// channels in one virtual-clock pass) buys over scalar submission on the same device.
// Virtual-time MB/s isolates the channel-overlap effect; batch=1 is the scalar path and
// doubles as the regression anchor (it must match the pre-batching numbers exactly).
//
// Flags: --batches=1,8,32 overrides the sweep; --pages=N the per-run volume.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

constexpr uint64_t kDefaultPages = 64 * 1024;  // 256 MiB of 4K I/O per measurement.
constexpr uint64_t kRepeats = 3;

double RunCase(const std::string& pattern, IoKind kind, uint64_t batch, uint64_t pages,
               uint64_t seed) {
  FtlConfig config = BenchConfig();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  if (kind == IoKind::kRead) {
    Prefill(ftl.get(), &clock, lba_space);
  }

  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);
  std::unique_ptr<Workload> workload;
  if (pattern == "seq") {
    workload = std::make_unique<SequentialWorkload>(kind, 0, lba_space, /*wrap=*/true);
  } else {
    workload = std::make_unique<RandomWorkload>(kind, lba_space, seed);
  }

  RunOptions options;
  options.batch = batch;
  const uint64_t start = clock.NowNs();
  auto result = runner.Run(workload.get(), pages, options);
  IOSNAP_CHECK(result.ok());
  const uint64_t end = std::max(result->drain_end_ns, clock.NowNs());
  BenchDumpMetrics(*ftl);
  return MbPerSec(result->bytes, end - start);
}

void Row(const char* label, const std::string& pattern, IoKind kind,
         const std::vector<uint64_t>& batches, uint64_t pages) {
  std::printf("%-18s", label);
  double base = 0;
  for (uint64_t batch : batches) {
    Measurement m;
    for (uint64_t rep = 0; rep < kRepeats; ++rep) {
      m.Add(RunCase(pattern, kind, batch, pages, 2000 + rep));
    }
    if (base == 0) {
      base = m.stats.mean();
    }
    std::printf("  %8.1f (%4.2fx)", m.stats.mean(),
                base > 0 ? m.stats.mean() / base : 0);
  }
  std::printf("  MB/s\n");
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  Flags flags = BenchInit(argc, argv, {"batches", "pages"});
  std::vector<uint64_t> batches;
  const std::string batches_str = flags.GetString("batches", "1,8,32");
  for (size_t pos = 0; pos < batches_str.size();) {
    const size_t comma = batches_str.find(',', pos);
    const std::string tok = batches_str.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const uint64_t b = std::strtoull(tok.c_str(), nullptr, 10);
    IOSNAP_CHECK(b > 0);
    batches.push_back(b);
    pos = comma == std::string::npos ? batches_str.size() : comma + 1;
  }
  const uint64_t pages = (uint64_t)flags.GetInt("pages", kDefaultPages);

  PrintHeader("Vectored submission: virtual-time throughput vs batch size",
              "batch=1 equals the scalar path; larger batches overlap channels");
  std::printf("%-18s", "");
  for (uint64_t b : batches) {
    std::printf("  batch=%-11llu", static_cast<unsigned long long>(b));
  }
  std::printf("\n");
  PrintRule();
  Row("Sequential Write", "seq", IoKind::kWrite, batches, pages);
  Row("Random Write", "rand", IoKind::kWrite, batches, pages);
  Row("Sequential Read", "seq", IoKind::kRead, batches, pages);
  Row("Random Read", "rand", IoKind::kRead, batches, pages);
  PrintRule();
  std::printf("(speedup in parentheses is relative to the first batch size listed)\n");
  BenchFinish();
  return 0;
}
