// Ablation A4: CoW validity bitmaps vs the paper's rejected naive design.
//
// §5.4.1: "A naive design would be to copy the validity bitmap at snapshot creation ...
// clearly, such a system would be highly inefficient." This ablation quantifies it:
// snapshot-create latency and validity-map memory as snapshots accumulate, CoW vs naive.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

void Run(bool naive) {
  FtlConfig config = BenchConfigSmall();
  config.naive_validity_copy = naive;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  // Sequential prefill: LBA order == physical order, so the hot region below stays
  // physically clustered and the CoW design touches few chunks.
  const uint64_t lba_space = 64 * 1024;
  Prefill(ftl.get(), &clock, lba_space);  // 256 MiB on the log.

  std::printf("%-6s", naive ? "naive" : "CoW");
  Rng rng(98);
  for (int i = 0; i < 5; ++i) {
    auto snap = ftl->CreateSnapshot("a4", clock.NowNs());
    IOSNAP_CHECK(snap.ok());
    clock.AdvanceTo(snap->io.CompletionNs());
    // Localized churn between snapshots (a hot region touching only a couple of
    // validity chunks): the CoW design copies just those, the naive design copies all.
    for (int w = 0; w < 1024; ++w) {
      auto io = ftl->Write(rng.NextBelow(lba_space / 32), {}, clock.NowNs());
      IOSNAP_CHECK(io.ok());
      clock.AdvanceTo(io->CompletionNs());
    }
    std::printf("  create %7.0f us / mem %8s", NsToUs(snap->io.LatencyNs()),
                HumanBytes(ftl->validity().MemoryBytes()).c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Ablation A4: CoW validity bitmaps vs naive full copies (5 snapshots)",
              "naive creates get slower and memory multiplies; CoW stays flat");
  Run(false);
  Run(true);
  PrintRule();
  std::printf("(paper: naive would need e.g. 512 MB of bitmap per snapshot on 2 TB)\n");
  BenchFinish();
  return 0;
}
