// Ablation A3: activation with a per-segment epoch index (§7 future work).
//
// Stock ioSnap activation scans every used segment because the cleaner may have moved
// snapshot blocks anywhere. The paper suggests precomputed metadata could narrow the
// scan. This repo's extension keeps a per-segment epoch summary; activation skips
// segments that provably hold no data from the snapshot's lineage. The benefit grows
// with the amount of unrelated (post-snapshot) data on the log.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

void Row(uint64_t post_snapshot_pages) {
  double activation_ms[2] = {0, 0};
  uint64_t scanned[2] = {0, 0};
  uint64_t skipped[2] = {0, 0};
  for (int use_index = 0; use_index < 2; ++use_index) {
    FtlConfig config = BenchConfig();
    config.activation_segment_index = use_index == 1;
    std::unique_ptr<Ftl> ftl = MustCreate(config);
    SimClock clock;
    const uint64_t lba_space = ftl->LbaCount() * 3 / 4;

    PrefillRandom(ftl.get(), &clock, 8 * 1024, lba_space, 95);  // 32 MiB snapshot.
    auto snap = ftl->CreateSnapshot("a3", clock.NowNs());
    IOSNAP_CHECK(snap.ok());
    clock.AdvanceTo(snap->io.CompletionNs());
    PrefillRandom(ftl.get(), &clock, post_snapshot_pages, lba_space, 96);

    uint64_t finish = clock.NowNs();
    auto view = ftl->ActivateBlocking(snap->snap_id, clock.NowNs(), false, &finish);
    IOSNAP_CHECK(view.ok());
    activation_ms[use_index] = NsToMs(finish - clock.NowNs());
    scanned[use_index] = ftl->stats().activation_segments_scanned;
    skipped[use_index] = ftl->stats().activation_segments_skipped;
  }
  std::printf("%12s %14.1f %14.1f %9.1fx %10llu %10llu\n",
              HumanBytes(post_snapshot_pages * 4096).c_str(), activation_ms[0],
              activation_ms[1],
              activation_ms[1] > 0 ? activation_ms[0] / activation_ms[1] : 0,
              static_cast<unsigned long long>(scanned[1]),
              static_cast<unsigned long long>(skipped[1]));
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Ablation A3: activation segment index (32 MiB snapshot + growing churn)",
              "full scan cost grows with log size; the index keeps activation near-flat");
  std::printf("%12s %14s %14s %9s %10s %10s\n", "churn after", "full scan(ms)",
              "indexed (ms)", "speedup", "scanned", "skipped");
  PrintRule();
  for (uint64_t pages : {16 * 1024ull, 64 * 1024ull, 128 * 1024ull, 256 * 1024ull}) {
    Row(pages);
  }
  PrintRule();
  std::printf("(the skip is conservative: a segment is read unless its epoch summary\n"
              " proves it holds no lineage data)\n");
  BenchFinish();
  return 0;
}
