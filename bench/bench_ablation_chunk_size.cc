// Ablation A2: validity-bitmap chunk granularity.
//
// The CoW validity design (§5.4.1) trades chunk size against two costs: small chunks
// mean many chunk objects (table overhead, more merge visits); large chunks mean each
// post-snapshot first-touch copies more bytes (bigger Fig 7 latency spikes). This sweep
// runs the Fig 7 scenario at several chunk sizes and reports CoW copies/bytes, the
// worst-case post-create write latency, and validity-map memory.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

void Row(uint64_t chunk_bits) {
  FtlConfig config = BenchConfigSmall();
  config.validity_chunk_bits = chunk_bits;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  PrefillRandom(ftl.get(), &clock, 48 * 1024, lba_space, 91);

  auto snap = ftl->CreateSnapshot("a2", clock.NowNs());
  IOSNAP_CHECK(snap.ok());
  clock.AdvanceTo(snap->io.CompletionNs());

  Rng rng(92);
  OnlineStats latency;
  for (int i = 0; i < 8192; ++i) {
    auto io = ftl->Write(rng.NextBelow(lba_space), {}, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
    latency.Add(NsToUs(io->LatencyNs()));
  }

  const FtlStats& stats = ftl->stats();
  std::printf("%10llu %12llu %12s %14.1f %14.1f %12s\n",
              static_cast<unsigned long long>(chunk_bits),
              static_cast<unsigned long long>(stats.validity_cow_events),
              HumanBytes(stats.validity_cow_bytes).c_str(), latency.mean(), latency.max(),
              HumanBytes(ftl->validity().MemoryBytes()).c_str());
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Ablation A2: validity chunk size vs CoW cost (Fig 7 scenario)",
              "small chunks: many cheap copies; large chunks: few expensive copies"
              " (bigger worst-case write latency)");
  std::printf("%10s %12s %12s %14s %14s %12s\n", "chunk bits", "cow events", "cow bytes",
              "mean lat (us)", "max lat (us)", "map memory");
  PrintRule();
  for (uint64_t bits : {1024ull, 4096ull, 8192ull, 32768ull, 131072ull}) {
    Row(bits);
  }
  PrintRule();
  std::printf("(paper uses 4 KiB bitmap pages = 32768 bits per chunk)\n");
  BenchFinish();
  return 0;
}
