// Multi-queue submission scaling: throughput vs --queues ∈ {1, 2, 4, 8}.
//
// Measures what the NVMe-style IoQueueLayer (src/core/io_queue) buys over a single
// synchronous submitter on the same device. The sweep holds iodepth=1 per queue, so
// total in-flight submissions == queue count: at queues=1 every submission drains
// before the next is admitted (the vectored path's cadence, and its regression
// anchor), while at queues=N new submissions are admitted at earlier completions'
// times and keep the channel/bus pipeline full across batch boundaries.
//
// Flags: --queue_counts=1,2,4,8 overrides the sweep; --iodepth=N the per-queue depth
// (raising it saturates even a single queue — the sweep then measures nothing);
// --batch=N the ops per submission; --pages=N the per-run volume.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

constexpr uint64_t kDefaultPages = 64 * 1024;  // 256 MiB of 4K I/O per measurement.
constexpr uint64_t kDefaultBatch = 32;
constexpr uint64_t kDefaultIodepth = 1;
constexpr uint64_t kRepeats = 3;

double RunCase(const std::string& pattern, IoKind kind, uint32_t queues,
               uint32_t iodepth, uint64_t batch, uint64_t pages, uint64_t seed,
               uint32_t buses = 1, bool copyback = false, uint64_t parity_stripe = 0,
               double* parity_space_frac = nullptr) {
  FtlConfig config = BenchConfig();
  config.parity_stripe = parity_stripe;
  // 32 channels instead of BenchConfig's 16: at 16, the per-channel cycle
  // (50us program + 3us transfer) exceeds the 16-slot bus rotation (48us), so the
  // channel array — not the shared bus — caps pipelined throughput and flattens the
  // sweep. At 32 the bus is the binding resource, which is the contention this
  // experiment is about.
  config.nand.num_channels = 32;
  config.nand.buses = buses;
  config.gc_copyback = copyback;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  if (kind == IoKind::kRead) {
    Prefill(ftl.get(), &clock, lba_space);
  }

  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);
  std::unique_ptr<Workload> workload;
  if (pattern == "seq") {
    workload = std::make_unique<SequentialWorkload>(kind, 0, lba_space, /*wrap=*/true);
  } else {
    workload = std::make_unique<RandomWorkload>(kind, lba_space, seed);
  }

  RunOptions options;
  options.queues = queues;
  options.iodepth = iodepth;
  options.batch = batch;
  const uint64_t start = clock.NowNs();
  auto result = runner.Run(workload.get(), pages, options);
  IOSNAP_CHECK(result.ok());
  const uint64_t end = std::max(result->drain_end_ns, clock.NowNs());
  if (parity_space_frac != nullptr) {
    const uint64_t programmed = ftl->device().stats().pages_programmed;
    const uint64_t parity = ftl->log_manager().stats().parity_pages_written;
    *parity_space_frac =
        programmed > 0 ? static_cast<double>(parity) / static_cast<double>(programmed)
                       : 0.0;
  }
  BenchDumpMetrics(*ftl);
  return MbPerSec(result->bytes, end - start);
}

void Row(const char* label, const std::string& pattern, IoKind kind,
         const std::vector<uint32_t>& queue_counts, uint32_t iodepth, uint64_t batch,
         uint64_t pages) {
  std::printf("%-18s", label);
  double base = 0;
  for (uint32_t queues : queue_counts) {
    Measurement m;
    for (uint64_t rep = 0; rep < kRepeats; ++rep) {
      m.Add(RunCase(pattern, kind, queues, iodepth, batch, pages, 4000 + rep));
    }
    if (base == 0) {
      base = m.stats.mean();
    }
    std::printf("  %8.1f (%4.2fx)", m.stats.mean(),
                base > 0 ? m.stats.mean() / base : 0);
    BenchRecord("queue_scaling." + BenchSlug(label) + ".q" + std::to_string(queues) +
                    "_mbps",
                m.stats.mean());
  }
  std::printf("  MB/s\n");
}

// Multi-bus sweep: same workload at a fixed queue count, buses ∈ `bus_counts`.
// buses=1 is the single-shared-bus ceiling (≈1365 MB/s at 4 KiB / 3 µs); more buses
// stripe the channels across independent transfer paths until the channel array
// itself becomes the binding resource.
void BusRow(const char* label, const std::string& pattern, IoKind kind,
            const std::vector<uint32_t>& bus_counts, uint32_t queues, uint32_t iodepth,
            uint64_t batch, uint64_t pages, bool copyback) {
  std::printf("%-18s", label);
  double base = 0;
  for (uint32_t buses : bus_counts) {
    Measurement m;
    for (uint64_t rep = 0; rep < kRepeats; ++rep) {
      m.Add(RunCase(pattern, kind, queues, iodepth, batch, pages, 5000 + rep, buses,
                    copyback));
    }
    if (base == 0) {
      base = m.stats.mean();
    }
    std::printf("  %8.1f (%4.2fx)", m.stats.mean(),
                base > 0 ? m.stats.mean() / base : 0);
    BenchRecord("queue_scaling." + BenchSlug(label) + ".buses" + std::to_string(buses) +
                    "_mbps",
                m.stats.mean());
  }
  std::printf("  MB/s\n");
}

// Parity overhead sweep: same workload at a fixed queue count, parity_stripe ∈
// `stripes` (0 = protection off, the baseline column). Each cell reports bandwidth,
// the ratio to the parity-off column, and the measured space overhead — the fraction
// of all page programs that were parity pages (≈ 1/(stripe+1) of data traffic, minus
// segment-boundary clamping).
void ParityRow(const char* label, const std::string& pattern, IoKind kind,
               const std::vector<uint64_t>& stripes, uint32_t queues, uint32_t iodepth,
               uint64_t batch, uint64_t pages) {
  std::printf("%-18s", label);
  double base = 0;
  for (uint64_t stripe : stripes) {
    Measurement m;
    double space_frac = 0;
    for (uint64_t rep = 0; rep < kRepeats; ++rep) {
      m.Add(RunCase(pattern, kind, queues, iodepth, batch, pages, 6000 + rep,
                    /*buses=*/1, /*copyback=*/false, stripe, &space_frac));
    }
    if (base == 0) {
      base = m.stats.mean();
    }
    std::printf("  %8.1f (%4.2fx, %4.1f%%)", m.stats.mean(),
                base > 0 ? m.stats.mean() / base : 0, 100.0 * space_frac);
    BenchRecord("queue_scaling." + BenchSlug(label) + ".parity" +
                    std::to_string(stripe) + "_mbps",
                m.stats.mean());
  }
  std::printf("  MB/s\n");
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  Flags flags = BenchInit(argc, argv,
                          {"queue_counts", "bus_counts", "parity_stripes", "iodepth",
                           "batch", "pages", "copyback"});
  std::vector<uint32_t> queue_counts;
  const std::string counts_str = flags.GetString("queue_counts", "1,2,4,8");
  for (size_t pos = 0; pos < counts_str.size();) {
    const size_t comma = counts_str.find(',', pos);
    const std::string tok = counts_str.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const uint64_t q = std::strtoull(tok.c_str(), nullptr, 10);
    IOSNAP_CHECK(q > 0);
    queue_counts.push_back((uint32_t)q);
    pos = comma == std::string::npos ? counts_str.size() : comma + 1;
  }
  const uint32_t iodepth = (uint32_t)flags.GetInt("iodepth", kDefaultIodepth);
  const uint64_t batch = (uint64_t)flags.GetInt("batch", kDefaultBatch);
  const uint64_t pages = (uint64_t)flags.GetInt("pages", kDefaultPages);

  PrintHeader("Multi-queue submission: virtual-time throughput vs queue count",
              "one deep queue is bus-limited; more queues pipeline admissions "
              "across flushes");
  std::printf("(iodepth=%u, batch=%llu per submission)\n", iodepth,
              (unsigned long long)batch);
  std::printf("%-18s", "");
  for (uint32_t q : queue_counts) {
    std::printf("  queues=%-10u", q);
  }
  std::printf("\n");
  PrintRule();
  Row("Sequential Write", "seq", IoKind::kWrite, queue_counts, iodepth, batch, pages);
  Row("Random Write", "rand", IoKind::kWrite, queue_counts, iodepth, batch, pages);
  Row("Sequential Read", "seq", IoKind::kRead, queue_counts, iodepth, batch, pages);
  Row("Random Read", "rand", IoKind::kRead, queue_counts, iodepth, batch, pages);
  PrintRule();
  std::printf("(speedup in parentheses is relative to the first queue count listed)\n");

  std::vector<uint32_t> bus_counts;
  const std::string buses_str = flags.GetString("bus_counts", "1,2,4");
  for (size_t pos = 0; pos < buses_str.size();) {
    const size_t comma = buses_str.find(',', pos);
    const std::string tok = buses_str.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const uint64_t b = std::strtoull(tok.c_str(), nullptr, 10);
    IOSNAP_CHECK(b > 0);
    bus_counts.push_back((uint32_t)b);
    pos = comma == std::string::npos ? buses_str.size() : comma + 1;
  }
  const bool copyback = flags.GetBool("copyback", false);
  const uint32_t bus_sweep_queues = 4;

  PrintHeader("Per-channel buses: virtual-time throughput vs bus count",
              "buses=1 is the shared-bus ceiling; striping channels across buses "
              "lifts it until the channel array binds");
  std::printf("(queues=%u, iodepth=%u, batch=%llu, copyback=%s)\n", bus_sweep_queues,
              iodepth, (unsigned long long)batch, copyback ? "on" : "off");
  std::printf("%-18s", "");
  for (uint32_t b : bus_counts) {
    std::printf("  buses=%-11u", b);
  }
  std::printf("\n");
  PrintRule();
  BusRow("Sequential Write", "seq", IoKind::kWrite, bus_counts, bus_sweep_queues,
         iodepth, batch, pages, copyback);
  BusRow("Random Write", "rand", IoKind::kWrite, bus_counts, bus_sweep_queues, iodepth,
         batch, pages, copyback);
  BusRow("Sequential Read", "seq", IoKind::kRead, bus_counts, bus_sweep_queues, iodepth,
         batch, pages, copyback);
  PrintRule();
  std::printf("(speedup in parentheses is relative to the first bus count listed)\n");

  std::vector<uint64_t> parity_stripes;
  const std::string stripes_str = flags.GetString("parity_stripes", "0,7,3");
  for (size_t pos = 0; pos < stripes_str.size();) {
    const size_t comma = stripes_str.find(',', pos);
    const std::string tok = stripes_str.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    parity_stripes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    pos = comma == std::string::npos ? stripes_str.size() : comma + 1;
  }

  PrintHeader("Segment parity: virtual-time throughput vs parity stripe width",
              "one parity program per `stripe` data pages costs ~1/(stripe+1) of "
              "bandwidth and space; stripe=0 is the unprotected baseline");
  std::printf("(queues=%u, iodepth=%u, batch=%llu; cell = MB/s (vs stripe=%llu, "
              "parity space share))\n",
              bus_sweep_queues, iodepth, (unsigned long long)batch,
              (unsigned long long)parity_stripes.front());
  std::printf("%-18s", "");
  for (uint64_t s : parity_stripes) {
    std::printf("  stripe=%-17llu", (unsigned long long)s);
  }
  std::printf("\n");
  PrintRule();
  ParityRow("Sequential Write", "seq", IoKind::kWrite, parity_stripes, bus_sweep_queues,
            iodepth, batch, pages);
  ParityRow("Random Write", "rand", IoKind::kWrite, parity_stripes, bus_sweep_queues,
            iodepth, batch, pages);
  PrintRule();
  BenchFinish();
  return 0;
}
