// Figure 11: Foreground write latency around snapshot creation — ioSnap vs a
// disk-optimized CoW snapshot design (Btrfs-like baseline).
//
// Both systems run on the same simulated flash device. After a sequential prefill, a
// random-write workload runs while a snapshot is created every 5 virtual seconds. The
// paper compares each system's *deviation from its own baseline* (the architectures are
// too different for absolute comparison): Btrfs writes degrade up to 3x around each
// create (commit flush + post-snapshot metadata CoW); ioSnap stays within ~5%.
//
// Scaling: paper prefills 8 GB on 1.2 TB; we prefill 512 MiB on 3 GiB (baseline FTL
// device) and the CowStore volume proportionally.

#include "bench/bench_common.h"
#include "src/baseline/cow_store.h"
#include "src/baseline/cow_target.h"

namespace iosnap {
namespace {

constexpr uint64_t kSnapshotPeriodNs = SecToNs(5);
constexpr uint64_t kRunNs = SecToNs(26);
constexpr uint64_t kPrefillPages = 128 * 1024;  // 512 MiB.

struct SeriesResult {
  OnlineStats base;     // Latency before the first snapshot.
  OnlineStats overall;
  double worst_window_ratio = 0;  // max bucket mean / baseline mean.
  Timeline timeline;
};

// Shared driver: run random writes, calling `snap` every 5 virtual seconds.
template <typename WriteFn, typename SnapFn>
SeriesResult Drive(SimClock* clock, uint64_t lba_space, WriteFn&& do_write,
                   SnapFn&& do_snapshot) {
  SeriesResult out;
  Rng rng(61);
  const uint64_t t0 = clock->NowNs();
  uint64_t next_snap = t0 + kSnapshotPeriodNs;
  while (clock->NowNs() - t0 < kRunNs) {
    if (clock->NowNs() >= next_snap) {
      do_snapshot();
      next_snap += kSnapshotPeriodNs;
    }
    const uint64_t now = clock->NowNs();
    const uint64_t latency = do_write(rng.NextBelow(lba_space));
    const double lat_us = NsToUs(latency);
    out.timeline.Add(now - t0, lat_us);
    out.overall.Add(lat_us);
    if (now - t0 < kSnapshotPeriodNs) {
      out.base.Add(lat_us);
    }
  }
  double worst = 0;
  for (const Timeline::Bucket& b : out.timeline.Bucketize(MsToNs(250))) {
    worst = std::max(worst, b.mean);
  }
  out.worst_window_ratio = out.base.mean() > 0 ? worst / out.base.mean() : 0;
  return out;
}

SeriesResult RunIoSnap() {
  FtlConfig config = BenchConfig();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  Prefill(ftl.get(), &clock, kPrefillPages);

  return Drive(
      &clock, lba_space,
      [&](uint64_t lba) {
        ftl->PumpBackground(clock.NowNs());
        auto io = ftl->Write(lba, {}, clock.NowNs());
        IOSNAP_CHECK(io.ok());
        clock.AdvanceTo(io->CompletionNs());
        return io->LatencyNs();
      },
      [&]() {
        auto s = ftl->CreateSnapshot("fig11", clock.NowNs());
        IOSNAP_CHECK(s.ok());
        clock.AdvanceTo(s->io.CompletionNs());
      });
}

SeriesResult RunBtrfsLike() {
  FtlConfig config = BenchConfig();
  config.snapshots_enabled = false;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  // Commit interval >> snapshot period's worth of ops: each snapshot create flushes a
  // large dirty set, as with the paper's 30 s Btrfs transaction commit vs 5 s snapshots.
  CowStoreOptions opts;
  opts.node_fanout = 64;
  opts.commit_every_ops = 4096;
  auto store_or = CowStore::Create(ftl.get(), opts);
  IOSNAP_CHECK(store_or.ok());
  std::unique_ptr<CowStore> store = std::move(store_or).value();
  const uint64_t volume = store->volume_blocks();
  const uint64_t lba_space = volume * 3 / 4;

  // Prefill through the store so the tree exists.
  for (uint64_t i = 0; i < std::min<uint64_t>(kPrefillPages, lba_space); ++i) {
    auto io = store->Write(i % lba_space, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
  }

  return Drive(
      &clock, lba_space,
      [&](uint64_t lba) {
        ftl->PumpBackground(clock.NowNs());
        auto io = store->Write(lba, clock.NowNs());
        IOSNAP_CHECK(io.ok());
        clock.AdvanceTo(io->CompletionNs());
        return io->LatencyNs();
      },
      [&]() {
        IoResult snap_io;
        auto snap = store->CreateSnapshot(clock.NowNs(), &snap_io);
        IOSNAP_CHECK(snap.ok());
        clock.AdvanceTo(snap_io.CompletionNs());
      });
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  Flags flags = BenchInit(argc, argv, {"timeline"});
  const bool timelines = flags.GetBool("timeline", false);
  PrintHeader("Figure 11: write latency around snapshot creates — Btrfs-like vs ioSnap",
              "Btrfs-like degrades up to ~3x from its baseline around creates; ioSnap"
              " deviates only a few percent");

  SeriesResult btrfs = RunBtrfsLike();
  SeriesResult iosnap_result = RunIoSnap();

  std::printf("%-12s baseline %8.1f us  overall %8.1f us  worst 250ms window %.2fx\n",
              "Btrfs-like", btrfs.base.mean(), btrfs.overall.mean(),
              btrfs.worst_window_ratio);
  std::printf("%-12s baseline %8.1f us  overall %8.1f us  worst 250ms window %.2fx\n",
              "ioSnap", iosnap_result.base.mean(), iosnap_result.overall.mean(),
              iosnap_result.worst_window_ratio);
  if (timelines) {
    std::printf("\nBtrfs-like timeline (250 ms buckets):\n%s",
                btrfs.timeline.ToCsv(MsToNs(250), "t_sec", "lat_us").c_str());
    std::printf("\nioSnap timeline (250 ms buckets):\n%s",
                iosnap_result.timeline.ToCsv(MsToNs(250), "t_sec", "lat_us").c_str());
  }
  PrintRule();
  std::printf("(paper: Btrfs up to 3x latency around each create; ioSnap ~5%% deviation)\n");
  BenchFinish();
  return 0;
}
