// Shared helpers for the paper-reproduction benchmarks.
//
// Every benchmark binary regenerates one table or figure from the ioSnap paper's
// evaluation (§6) on the simulated device, printing the same rows/series the paper
// reports. Absolute numbers differ from the paper's Fusion-io testbed (see DESIGN.md's
// substitution table); the *shapes* — which system wins, by what factor, where the
// crossovers sit — are the reproduction target.
//
// Scaling: the paper's device is 1.2 TB; the default bench device is 3 GiB (x410 smaller)
// so that runs complete in seconds of wall time. Per-experiment data volumes are scaled
// by the same factor and noted in each binary's output and in EXPERIMENTS.md.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/ftl.h"
#include "src/workload/runner.h"
#include "src/workload/workload.h"

namespace iosnap {

// Default bench device: 3 GiB, 4 KiB pages, 4 MiB segments, 16 channels, header-only.
inline FtlConfig BenchConfig() {
  FtlConfig config;
  config.nand.page_size_bytes = 4 * kKiB;
  config.nand.pages_per_segment = 1024;
  config.nand.num_segments = 768;
  config.nand.num_channels = 16;
  config.nand.store_data = false;
  config.overprovision = 0.25;
  config.validity_chunk_bits = 8192;
  config.gc_reserve_segments = 4;
  config.gc_low_free_segments = 16;
  config.gc_high_free_segments = 32;
  return config;
}

// A smaller 1 GiB device for latency-timeline experiments.
inline FtlConfig BenchConfigSmall() {
  FtlConfig config = BenchConfig();
  config.nand.num_segments = 256;
  return config;
}

inline std::unique_ptr<Ftl> MustCreate(const FtlConfig& config) {
  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  return std::move(ftl_or).value();
}

// Sequentially prefills `pages` pages starting at LBA 0 and drains the device.
inline void Prefill(Ftl* ftl, SimClock* clock, uint64_t pages, uint64_t queue_depth = 16) {
  FtlTarget target(ftl);
  Runner runner(&target, clock, ftl->config().nand.page_size_bytes);
  SequentialWorkload fill(IoKind::kWrite, 0, pages);
  RunOptions options;
  options.queue_depth = queue_depth;
  auto result = runner.Run(&fill, pages, options);
  IOSNAP_CHECK(result.ok());
  clock->AdvanceTo(result->drain_end_ns);
}

// Randomly prefills `pages` writes over [0, lba_space) and drains.
inline void PrefillRandom(Ftl* ftl, SimClock* clock, uint64_t pages, uint64_t lba_space,
                          uint64_t seed) {
  FtlTarget target(ftl);
  Runner runner(&target, clock, ftl->config().nand.page_size_bytes);
  RandomWorkload fill(IoKind::kWrite, lba_space, seed);
  RunOptions options;
  options.queue_depth = 16;
  auto result = runner.Run(&fill, pages, options);
  IOSNAP_CHECK(result.ok());
  clock->AdvanceTo(result->drain_end_ns);
}

// Pretty-printing helpers.
inline void PrintHeader(const std::string& title, const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

inline std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.0fM", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.0fK", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

// Mean +- sample stddev over repeated measurements.
struct Measurement {
  OnlineStats stats;
  void Add(double x) { stats.Add(x); }
  std::string Format(const char* unit) const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%9.2f +- %-7.2f %s", stats.mean(), stats.stddev(),
                  unit);
    return buf;
  }
};

}  // namespace iosnap

#endif  // BENCH_BENCH_COMMON_H_
