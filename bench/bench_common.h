// Shared helpers for the paper-reproduction benchmarks.
//
// Every benchmark binary regenerates one table or figure from the ioSnap paper's
// evaluation (§6) on the simulated device, printing the same rows/series the paper
// reports. Absolute numbers differ from the paper's Fusion-io testbed (see DESIGN.md's
// substitution table); the *shapes* — which system wins, by what factor, where the
// crossovers sit — are the reproduction target.
//
// Scaling: the paper's device is 1.2 TB; the default bench device is 3 GiB (x410 smaller)
// so that runs complete in seconds of wall time. Per-experiment data volumes are scaled
// by the same factor and noted in each binary's output and in EXPERIMENTS.md.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/ftl.h"
#include "src/obs/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_bindings.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/workload/runner.h"
#include "src/workload/workload.h"

namespace iosnap {

// Bench default trace window: smaller than TraceRecorder::kDefaultCapacity because the
// bench overhead budget is tight — the end-to-end cost of --trace_out is dominated by
// the one-time export write (~120 bytes/event of JSON), and a 32Ki-event window keeps
// that under ~2% of a multi-second bench while still covering the measured phase
// (prefill is untraced, see Prefill below). Override with --trace_capacity=N.
inline constexpr size_t kBenchTraceCapacity = 1 << 15;

// Shared observability state for one bench binary. Every FTL built through MustCreate
// gets the recorder attached, so a single --trace_out captures the whole run even when
// the bench constructs several devices back to back.
struct BenchEnv {
  std::string trace_out;
  std::string metrics_out;
  std::string bench_out;
  std::unique_ptr<TraceRecorder> trace;
  // Per-op latency attribution across every FTL the bench constructs (--attribution).
  // Off by default: the bench overhead budget treats attribution like tracing — a
  // feature under test, not ambient cost.
  std::unique_ptr<LatencyAttributor> attributor;
  // Deterministic virtual-time results (BenchRecord): these depend only on the
  // simulation, never on host speed, so they are the metrics the CI regression gate
  // may compare commit-over-commit.
  std::vector<std::pair<std::string, double>> gauges;
};

inline BenchEnv& GlobalBenchEnv() {
  static BenchEnv env;
  return env;
}

// Parses the shared bench flags (--trace_out=, --trace_capacity=, --metrics_out=,
// --bench_out=, --attribution, --attribution_stride=, --log_level=) plus any
// bench-specific `extra_known` flags, rejecting typos. Call first in main(); the
// returned Flags serves the bench's own lookups.
inline Flags BenchInit(int argc, char** argv,
                       const std::vector<std::string>& extra_known = {}) {
  Flags flags = Flags::Parse(argc, argv);
  std::vector<std::string> known = {"trace_out",   "trace_capacity",
                                    "metrics_out", "bench_out",
                                    "attribution", "attribution_stride",
                                    "log_level"};
  known.insert(known.end(), extra_known.begin(), extra_known.end());
  const auto unknown = flags.UnknownFlags(known);
  if (!unknown.empty()) {
    for (const auto& name : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    }
    std::exit(2);
  }
  const std::string log_level = flags.GetString("log_level", "info");
  const std::optional<LogLevel> parsed_level = ParseLogLevel(log_level);
  if (!parsed_level.has_value()) {
    std::fprintf(stderr, "unknown --log_level=%s\n", log_level.c_str());
    std::exit(2);
  }
  SetLogLevel(*parsed_level);

  BenchEnv& env = GlobalBenchEnv();
  env.trace_out = flags.GetString("trace_out", "");
  env.metrics_out = flags.GetString("metrics_out", "");
  env.bench_out = flags.GetString("bench_out", "");
  if (!env.trace_out.empty()) {
    env.trace = std::make_unique<TraceRecorder>(
        (size_t)flags.GetInt("trace_capacity", kBenchTraceCapacity));
  }
  if (flags.GetBool("attribution", false)) {
    // Benches only read the aggregates (span shares + histograms), so keep the cost
    // off the measured loop: a small ring (the default 24 MiB one streams through the
    // cache once per op) and a 1-in-16 sampling stride. Full recording costs ~30 ns
    // per op — ~9% of bench_table2's wall clock — while stride 16 keeps the overhead
    // under 1% and still sees >1M sampled ops per bench run. Span shares from the
    // sample are unbiased; pass --attribution_stride=1 to record every op.
    const uint64_t stride =
        (uint64_t)std::max<int64_t>(1, flags.GetInt("attribution_stride", 16));
    env.attributor = std::make_unique<LatencyAttributor>(4096, stride);
  }
  return flags;
}

// Records one deterministic virtual-time result under "bench.<name>". These land in
// --bench_out (BenchFinish) and feed tools/bench_trajectory.py --check, so record only
// values that are a pure function of the simulation (MB/s over the virtual clock,
// virtual latencies) — never wall-clock measurements.
inline void BenchRecord(const std::string& name, double value) {
  GlobalBenchEnv().gauges.emplace_back("bench." + name, value);
}

// "Sequential Write" -> "sequential_write": row labels as gauge-name components.
inline std::string BenchSlug(const std::string& label) {
  std::string slug;
  for (char c : label) {
    slug += c == ' ' ? '_' : (char)std::tolower((unsigned char)c);
  }
  return slug;
}

// Dumps every FtlStats/NandStats/ValidityStats/LogStats counter of `ftl` to
// --metrics_out. No-op when the flag is unset. Registers against the live ftl, so call
// it while the device of interest still exists (typically on the last configuration
// measured).
inline void BenchDumpMetrics(const Ftl& ftl) {
  BenchEnv& env = GlobalBenchEnv();
  if (env.metrics_out.empty()) {
    return;
  }
  MetricsRegistry registry;
  RegisterFtlStats(&registry, ftl.stats());
  RegisterNandStats(&registry, ftl.device().stats());
  RegisterNandBusGauges(&registry, ftl.device());
  RegisterValidityStats(&registry, ftl.validity().stats());
  RegisterLogStats(&registry, ftl.log_manager().stats());
  // Multi-queue layer: process-wide aggregates (queue-depth gauge, completion-latency
  // histogram), so benches that never construct an IoQueueLayer still dump zeros and
  // queue-scaling benches need no extra wiring.
  RegisterIoQueueStats(&registry, GlobalIoQueueStats());
  registry.RegisterHistogram("io_queue.completion_latency",
                             &GlobalQueueCompletionHistogram());
  if (env.attributor != nullptr) {
    env.attributor->RegisterMetrics(&registry);
  }
  if (registry.WriteFile(env.metrics_out)) {
    std::printf("metrics: %zu metrics to %s\n", registry.MetricCount(),
                env.metrics_out.c_str());
  } else {
    std::fprintf(stderr, "failed to write --metrics_out=%s\n", env.metrics_out.c_str());
  }
}

// Writes the accumulated trace to --trace_out, the BenchRecord gauges to --bench_out
// (flat {"bench.<name>": value} JSON — the shape bench_trajectory.py collects), and
// prints an aggregate span-share table when --attribution is on. Call once at the end
// of main.
inline void BenchFinish() {
  BenchEnv& env = GlobalBenchEnv();
  if (env.attributor != nullptr && env.attributor->ops() > 0) {
    std::printf("\nlatency attribution over %llu ops (share of total latency):\n",
                (unsigned long long)env.attributor->ops());
    uint64_t grand_total = 0;
    for (size_t i = 0; i < kNumLatencySpans; ++i) {
      grand_total += env.attributor->SpanTotalNs(static_cast<LatencySpan>(i));
    }
    for (size_t i = 0; i < kNumLatencySpans; ++i) {
      const LatencySpan span = static_cast<LatencySpan>(i);
      const uint64_t total = env.attributor->SpanTotalNs(span);
      std::printf("  %-11s %10.2f ms  %5.1f%%\n", LatencySpanName(span), NsToMs(total),
                  grand_total > 0 ? 100.0 * (double)total / (double)grand_total : 0.0);
    }
  }
  if (!env.bench_out.empty()) {
    std::string json = "{\n";
    for (size_t i = 0; i < env.gauges.size(); ++i) {
      char line[256];
      std::snprintf(line, sizeof(line), "  \"%s\": %.6f%s\n",
                    env.gauges[i].first.c_str(), env.gauges[i].second,
                    i + 1 < env.gauges.size() ? "," : "");
      json += line;
    }
    json += "}\n";
    std::FILE* f = std::fopen(env.bench_out.c_str(), "wb");
    if (f != nullptr && std::fwrite(json.data(), 1, json.size(), f) == json.size()) {
      std::printf("bench gauges: %zu to %s\n", env.gauges.size(), env.bench_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write --bench_out=%s\n", env.bench_out.c_str());
    }
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  if (env.trace == nullptr) {
    return;
  }
  if (WriteTraceFile(*env.trace, env.trace_out)) {
    std::printf("trace: %llu events to %s (%llu recorded, %llu dropped)\n",
                (unsigned long long)env.trace->size(), env.trace_out.c_str(),
                (unsigned long long)env.trace->total_recorded(),
                (unsigned long long)env.trace->dropped());
  } else {
    std::fprintf(stderr, "failed to write --trace_out=%s\n", env.trace_out.c_str());
  }
}

// Default bench device: 3 GiB, 4 KiB pages, 4 MiB segments, 16 channels, header-only.
inline FtlConfig BenchConfig() {
  FtlConfig config;
  config.nand.page_size_bytes = 4 * kKiB;
  config.nand.pages_per_segment = 1024;
  config.nand.num_segments = 768;
  config.nand.num_channels = 16;
  config.nand.store_data = false;
  config.overprovision = 0.25;
  config.validity_chunk_bits = 8192;
  config.gc_reserve_segments = 4;
  config.gc_low_free_segments = 16;
  config.gc_high_free_segments = 32;
  return config;
}

// A smaller 1 GiB device for latency-timeline experiments.
inline FtlConfig BenchConfigSmall() {
  FtlConfig config = BenchConfig();
  config.nand.num_segments = 256;
  return config;
}

inline std::unique_ptr<Ftl> MustCreate(const FtlConfig& config) {
  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  ftl->SetTraceRecorder(GlobalBenchEnv().trace.get());
  ftl->SetLatencyAttributor(GlobalBenchEnv().attributor.get());
  return ftl;
}

// Sequentially prefills `pages` pages starting at LBA 0 and drains the device.
inline void Prefill(Ftl* ftl, SimClock* clock, uint64_t pages, uint64_t queue_depth = 16) {
  // Prefill traffic would only be overwritten in the ring before the measured phase;
  // pause tracing so it costs nothing and the ring holds the interesting window.
  TracePauseGuard pause(GlobalBenchEnv().trace.get());
  FtlTarget target(ftl);
  Runner runner(&target, clock, ftl->config().nand.page_size_bytes);
  SequentialWorkload fill(IoKind::kWrite, 0, pages);
  RunOptions options;
  options.queue_depth = queue_depth;
  auto result = runner.Run(&fill, pages, options);
  IOSNAP_CHECK(result.ok());
  clock->AdvanceTo(result->drain_end_ns);
}

// Randomly prefills `pages` writes over [0, lba_space) and drains.
inline void PrefillRandom(Ftl* ftl, SimClock* clock, uint64_t pages, uint64_t lba_space,
                          uint64_t seed) {
  TracePauseGuard pause(GlobalBenchEnv().trace.get());
  FtlTarget target(ftl);
  Runner runner(&target, clock, ftl->config().nand.page_size_bytes);
  RandomWorkload fill(IoKind::kWrite, lba_space, seed);
  RunOptions options;
  options.queue_depth = 16;
  auto result = runner.Run(&fill, pages, options);
  IOSNAP_CHECK(result.ok());
  clock->AdvanceTo(result->drain_end_ns);
}

// Pretty-printing helpers.
inline void PrintHeader(const std::string& title, const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

inline std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.0fM", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.0fK", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

// Mean +- sample stddev over repeated measurements.
struct Measurement {
  OnlineStats stats;
  void Add(double x) { stats.Add(x); }
  std::string Format(const char* unit) const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%9.2f +- %-7.2f %s", stats.mean(), stats.stddev(),
                  unit);
    return buf;
  }
};

}  // namespace iosnap

#endif  // BENCH_BENCH_COMMON_H_
