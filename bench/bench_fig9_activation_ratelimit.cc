// Figure 9: Random-read latency during snapshot activation, with and without
// rate-limiting.
//
// Setup mirrors the paper: data spread across two snapshots, 4K random foreground reads;
// ~0.5 s into the workload the first snapshot is activated. Unthrottled activation
// saturates the device and multiplies read latency; rate-limiting ("x usec work / y msec
// sleep") trades activation time for foreground latency.
//
// Scaling: the paper has 1 GB in two snapshots on 1.2 TB and shows 100 us reads spiking
// ~10x for 0.3 s (no limit), vs ~2x spikes with activation stretched to ~3.5 s. We place
// 256 MiB across two snapshots on a 1 GiB device.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

struct LimitCase {
  const char* name;
  RateLimit limit;
};

void RunCase(const LimitCase& c, bool print_timeline) {
  FtlConfig config = BenchConfigSmall();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  const uint64_t half = 32 * 1024;       // 128 MiB per snapshot.
  const uint64_t lba_space = 2 * half;   // Foreground reads stay on mapped blocks.

  // Half the data before each snapshot, covering [0, 2*half) so foreground reads always
  // hit mapped blocks.
  auto fill_range = [&](uint64_t start) {
    FtlTarget target(ftl.get());
    Runner runner(&target, &clock, config.nand.page_size_bytes);
    SequentialWorkload fill(IoKind::kWrite, start, half);
    RunOptions options;
    options.queue_depth = 16;
    auto result = runner.Run(&fill, half, options);
    IOSNAP_CHECK(result.ok());
    clock.AdvanceTo(result->drain_end_ns);
  };
  fill_range(0);
  auto s1 = ftl->CreateSnapshot("fig9-a", clock.NowNs());
  IOSNAP_CHECK(s1.ok());
  clock.AdvanceTo(s1->io.CompletionNs());
  fill_range(half);
  auto s2 = ftl->CreateSnapshot("fig9-b", clock.NowNs());
  IOSNAP_CHECK(s2.ok());
  clock.AdvanceTo(s2->io.CompletionNs());

  Timeline latency;
  Rng rng(33);
  const uint64_t t0 = clock.NowNs();
  OnlineStats before;
  OnlineStats during;

  bool activation_started = false;
  bool activation_done = false;
  uint64_t activation_start = 0;
  uint64_t activation_end = 0;
  uint32_t view_id = 0;

  // Foreground reads for 4 virtual seconds (or until activation completes if longer).
  while (true) {
    const uint64_t now = clock.NowNs();
    const uint64_t elapsed = now - t0;
    if (!activation_started && elapsed >= MsToNs(500)) {
      auto view = ftl->BeginActivation(*&s1->snap_id, c.limit, now);
      IOSNAP_CHECK(view.ok());
      view_id = *view;
      activation_started = true;
      activation_start = now;
    }
    if (activation_started && !activation_done && ftl->ActivationDone(view_id)) {
      activation_done = true;
      activation_end = now;
    }
    if (elapsed > SecToNs(4) && (!activation_started || activation_done)) {
      break;
    }
    ftl->PumpBackground(now);
    auto io = ftl->Read(rng.NextBelow(lba_space), clock.NowNs(), nullptr);
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
    const double lat_us = NsToUs(io->LatencyNs());
    latency.Add(now - t0, lat_us);
    if (!activation_started) {
      before.Add(lat_us);
    } else if (!activation_done) {
      during.Add(lat_us);
    }
  }

  std::printf("%-18s baseline %7.1f us | during activation mean %8.1f us"
              " max %8.1f us | activation took %7.2f s\n",
              c.name, before.mean(), during.mean(), during.max(),
              NsToSec(activation_end - activation_start));
  if (print_timeline) {
    std::printf("  timeline (50 ms buckets):\n%s\n",
                latency.ToCsv(MsToNs(50), "t_sec", "read_lat_us").c_str());
  }
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  Flags flags = BenchInit(argc, argv, {"timeline"});
  const bool timelines = flags.GetBool("timeline", false);
  PrintHeader("Figure 9: random-read latency during activation, by rate limit",
              "no limit: ~10x latency, short activation; stricter limits: small spikes,"
              " activation stretched by an order of magnitude");
  RunCase({"(a) no limit", RateLimit::Unlimited()}, timelines);
  RunCase({"(b) 600us/10ms", RateLimit::Of(600, 10)}, timelines);
  RunCase({"(c) 200us/25ms", RateLimit::Of(200, 25)}, timelines);
  PrintRule();
  std::printf("(paper: 100 us baseline; 10x spikes for 0.3 s unthrottled; 2x spikes with\n"
              " activation stretched to ~3.5 s under 50usec/250msec pacing)\n");
  BenchFinish();
  return 0;
}
