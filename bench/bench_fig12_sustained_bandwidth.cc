// Figure 12: Sustained write bandwidth as (dormant) snapshots accumulate — ioSnap vs the
// Btrfs-like baseline.
//
// After a large sequential prefill, random writes run while a snapshot is created every
// 15 virtual seconds. The paper's observation: the disk-optimized design recovers more
// and more slowly from each create and its sustained bandwidth declines as snapshots
// build up (metadata CoW re-churn plus pinned blocks); ioSnap's bandwidth stays flat.
//
// Scaling: the paper prefills 200 GB on 1.2 TB (1/6 of the device); we prefill 512 MiB
// on 3 GiB and run ~8 snapshot periods.

#include "bench/bench_common.h"
#include "src/baseline/cow_store.h"

namespace iosnap {
namespace {

constexpr uint64_t kSnapshotPeriodNs = SecToNs(15);
constexpr uint64_t kRunNs = SecToNs(128);
constexpr uint64_t kPrefillPages = 32 * 1024;   // 128 MiB.
constexpr uint64_t kBucketNs = SecToNs(4);

struct Series {
  std::vector<double> mb_per_sec;  // One sample per bucket.
  double first = 0;
  double last = 0;
};

// The paper's 1.2 TB device absorbs every snapshot generation; at bench scale the churn
// working set is kept small enough that ~8 pinned generations fit on the device.
constexpr uint64_t kChurnLbas = 24 * 1024;  // 96 MiB working set.

template <typename WriteFn, typename SnapFn>
Series Drive(SimClock* clock, uint64_t lba_space, uint64_t page_bytes, WriteFn&& do_write,
             SnapFn&& do_snapshot) {
  Series out;
  Rng rng(71);
  const uint64_t t0 = clock->NowNs();
  uint64_t next_snap = t0 + kSnapshotPeriodNs;
  uint64_t bucket_start = t0;
  uint64_t bucket_bytes = 0;
  while (clock->NowNs() - t0 < kRunNs) {
    if (clock->NowNs() >= next_snap) {
      do_snapshot();
      next_snap += kSnapshotPeriodNs;
    }
    if (!do_write(rng.NextBelow(lba_space))) {
      std::printf("(device filled after %.0f s — stopping this series)\n",
                  NsToSec(clock->NowNs() - t0));
      break;
    }
    bucket_bytes += page_bytes;
    while (clock->NowNs() >= bucket_start + kBucketNs) {
      out.mb_per_sec.push_back(MbPerSec(bucket_bytes, kBucketNs));
      bucket_bytes = 0;
      bucket_start += kBucketNs;
    }
  }
  if (!out.mb_per_sec.empty()) {
    // Average the first and last quarter of the run to expose the trend.
    const size_t q = std::max<size_t>(1, out.mb_per_sec.size() / 4);
    double first_sum = 0;
    double last_sum = 0;
    for (size_t i = 0; i < q; ++i) {
      first_sum += out.mb_per_sec[i];
      last_sum += out.mb_per_sec[out.mb_per_sec.size() - 1 - i];
    }
    out.first = first_sum / static_cast<double>(q);
    out.last = last_sum / static_cast<double>(q);
  }
  return out;
}

// parity_stripe > 0 additionally measures the cost of XOR parity protection: the
// same churn with one parity page programmed per `parity_stripe` data pages. When
// `parity_space_frac` is non-null it receives the measured fraction of programmed
// pages that were parity — the space overhead that rides every bandwidth number.
Series RunIoSnap(uint64_t parity_stripe = 0, double* parity_space_frac = nullptr) {
  FtlConfig config = BenchConfig();
  config.parity_stripe = parity_stripe;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  Prefill(ftl.get(), &clock, kPrefillPages);
  Series out = Drive(
      &clock, kChurnLbas, config.nand.page_size_bytes,
      [&](uint64_t lba) {
        ftl->PumpBackground(clock.NowNs());
        auto io = ftl->Write(lba, {}, clock.NowNs());
        if (!io.ok()) {
          return false;
        }
        clock.AdvanceTo(io->CompletionNs());
        return true;
      },
      [&]() {
        auto s = ftl->CreateSnapshot("fig12", clock.NowNs());
        IOSNAP_CHECK(s.ok());
        clock.AdvanceTo(s->io.CompletionNs());
      });
  if (parity_space_frac != nullptr) {
    const uint64_t programmed = ftl->device().stats().pages_programmed;
    const uint64_t parity = ftl->log_manager().stats().parity_pages_written;
    *parity_space_frac =
        programmed > 0 ? static_cast<double>(parity) / static_cast<double>(programmed)
                       : 0.0;
  }
  return out;
}

// ioSnap again, but the churn writes go down the vectored path in groups of `batch`.
// Shares Drive()'s bucketing by treating the whole group as one "write" of batch pages.
Series RunIoSnapBatched(uint64_t batch) {
  FtlConfig config = BenchConfig();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  Prefill(ftl.get(), &clock, kPrefillPages);
  std::vector<WriteRequest> requests(batch);
  Rng lba_rng(71);
  return Drive(
      &clock, kChurnLbas, config.nand.page_size_bytes * batch,
      [&](uint64_t first_lba) {
        requests[0].lba = first_lba;
        for (uint64_t i = 1; i < batch; ++i) {
          requests[i].lba = lba_rng.NextBelow(kChurnLbas);
        }
        ftl->PumpBackground(clock.NowNs());
        auto ios = ftl->WriteV(requests, clock.NowNs());
        if (!ios.ok()) {
          return false;
        }
        uint64_t end = clock.NowNs();
        for (const IoResult& io : *ios) {
          end = std::max(end, io.CompletionNs());
        }
        clock.AdvanceTo(end);
        return true;
      },
      [&]() {
        auto s = ftl->CreateSnapshot("fig12b", clock.NowNs());
        IOSNAP_CHECK(s.ok());
        clock.AdvanceTo(s->io.CompletionNs());
      });
}

Series RunBtrfsLike() {
  FtlConfig config = BenchConfig();
  config.snapshots_enabled = false;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  CowStoreOptions opts;
  opts.node_fanout = 64;
  opts.commit_every_ops = 512;
  auto store_or = CowStore::Create(ftl.get(), opts);
  IOSNAP_CHECK(store_or.ok());
  std::unique_ptr<CowStore> store = std::move(store_or).value();
  for (uint64_t i = 0; i < kPrefillPages; ++i) {
    auto io = store->Write(i % store->volume_blocks(), clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
  }
  return Drive(
      &clock, kChurnLbas, config.nand.page_size_bytes,
      [&](uint64_t lba) {
        ftl->PumpBackground(clock.NowNs());
        auto io = store->Write(lba, clock.NowNs());
        if (!io.ok()) {
          return false;
        }
        clock.AdvanceTo(io->CompletionNs());
        return true;
      },
      [&]() {
        IoResult snap_io;
        auto snap = store->CreateSnapshot(clock.NowNs(), &snap_io);
        IOSNAP_CHECK(snap.ok());
        clock.AdvanceTo(snap_io.CompletionNs());
      });
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Figure 12: sustained write bandwidth with a snapshot every 15 s",
              "Btrfs-like bandwidth sags as snapshots accumulate; ioSnap stays flat");

  constexpr uint64_t kParityStripe = 7;  // One parity page per 7 data pages (12.5%).
  Series btrfs = RunBtrfsLike();
  Series iosnap_series = RunIoSnap();
  Series iosnap_b32 = RunIoSnapBatched(32);
  double parity_space_frac = 0;
  Series iosnap_parity = RunIoSnap(kParityStripe, &parity_space_frac);

  std::printf("t_sec,btrfs_like_mb_s,iosnap_mb_s,iosnap_batch32_mb_s,iosnap_parity%llu_mb_s\n",
              (unsigned long long)kParityStripe);
  const size_t n = std::max({btrfs.mb_per_sec.size(), iosnap_series.mb_per_sec.size(),
                             iosnap_b32.mb_per_sec.size(), iosnap_parity.mb_per_sec.size()});
  for (size_t i = 0; i < n; ++i) {
    const double b = i < btrfs.mb_per_sec.size() ? btrfs.mb_per_sec[i] : 0;
    const double s = i < iosnap_series.mb_per_sec.size() ? iosnap_series.mb_per_sec[i] : 0;
    const double v = i < iosnap_b32.mb_per_sec.size() ? iosnap_b32.mb_per_sec[i] : 0;
    const double p = i < iosnap_parity.mb_per_sec.size() ? iosnap_parity.mb_per_sec[i] : 0;
    std::printf("%zu,%.1f,%.1f,%.1f,%.1f\n", i * (kBucketNs / kNsPerSec), b, s, v, p);
  }
  PrintRule();
  std::printf("Btrfs-like: first-quarter %.1f MB/s -> last-quarter %.1f MB/s (%.0f%%)\n",
              btrfs.first, btrfs.last,
              btrfs.first > 0 ? 100.0 * btrfs.last / btrfs.first : 0);
  std::printf("ioSnap:     first-quarter %.1f MB/s -> last-quarter %.1f MB/s (%.0f%%)\n",
              iosnap_series.first, iosnap_series.last,
              iosnap_series.first > 0 ? 100.0 * iosnap_series.last / iosnap_series.first
                                      : 0);
  std::printf("ioSnap b=32: first-quarter %.1f MB/s -> last-quarter %.1f MB/s (%.0f%%)\n",
              iosnap_b32.first, iosnap_b32.last,
              iosnap_b32.first > 0 ? 100.0 * iosnap_b32.last / iosnap_b32.first : 0);
  std::printf(
      "ioSnap p=%llu: first-quarter %.1f MB/s -> last-quarter %.1f MB/s (%.0f%%), "
      "parity space %.1f%% of programs, bandwidth %.1f%% of parity-off\n",
      (unsigned long long)kParityStripe, iosnap_parity.first, iosnap_parity.last,
      iosnap_parity.first > 0 ? 100.0 * iosnap_parity.last / iosnap_parity.first : 0,
      100.0 * parity_space_frac,
      iosnap_series.last > 0 ? 100.0 * iosnap_parity.last / iosnap_series.last : 0);
  std::printf("(paper: Btrfs declines steadily; ioSnap delivers consistent bandwidth)\n");
  BenchFinish();
  return 0;
}
