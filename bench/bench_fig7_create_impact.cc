// Figure 7: Impact of snapshot creation on subsequent write latency.
//
// Worst-case configuration per the paper: 512-byte sectors. Random prefill populates the
// validity bitmaps; a snapshot marks every chunk copy-on-write; the first post-snapshot
// overwrite of each chunk pays the CoW copy, producing a brief latency spike that decays
// as chunks are copied. The figure shows (a) write latency over time and (b) CoW events
// over time, across two snapshot/overwrite rounds.
//
// Scaling: the paper prefills 3 GB on a 1.2 TB device and overwrites 8 MB per round; we
// prefill 150 MiB on a 512 MiB device (same ~x8 ratio of blocks per validity chunk, the
// chunk stays at the paper's 4 KiB) and overwrite 8 MiB per round, unscaled.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

constexpr uint64_t kPageBytes = 512;
constexpr uint64_t kPrefillPages = 300000;   // ~150 MiB of 512 B blocks.
constexpr uint64_t kOverwritesPerRound = 16384;  // 8 MiB per round.

FtlConfig Fig7Config() {
  FtlConfig config = BenchConfig();
  config.nand.page_size_bytes = kPageBytes;
  config.nand.pages_per_segment = 2048;
  config.nand.num_segments = 512;         // 512 MiB device of 512 B pages.
  config.nand.bus_ns_per_page = 400;      // Smaller transfer unit.
  config.validity_chunk_bits = 32768;     // 4 KiB chunks, as in the paper.
  return config;
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader(
      "Figure 7: write latency and validity-bitmap CoW after snapshot creation",
      "latency spikes briefly (~3x) right after each create, then returns to baseline;"
      " CoW copies cluster in the same window");

  FtlConfig config = Fig7Config();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  PrefillRandom(ftl.get(), &clock, kPrefillPages, lba_space, 11);

  Timeline latency;
  Timeline cow_events;
  Rng rng(12);
  const uint64_t t0 = clock.NowNs();

  uint64_t last_cow = ftl->stats().validity_cow_events;
  std::vector<uint64_t> per_round_cow;
  std::vector<uint64_t> per_round_bytes;

  for (int round = 0; round < 2; ++round) {
    const uint64_t cow_before = ftl->stats().validity_cow_events;
    const uint64_t bytes_before = ftl->stats().validity_cow_bytes;
    auto create = ftl->CreateSnapshot("fig7", clock.NowNs());
    IOSNAP_CHECK(create.ok());
    clock.AdvanceTo(create->io.CompletionNs());

    for (uint64_t i = 0; i < kOverwritesPerRound; ++i) {
      const uint64_t now = clock.NowNs();
      auto io = ftl->Write(rng.NextBelow(lba_space), {}, now);
      IOSNAP_CHECK(io.ok());
      clock.AdvanceTo(io->CompletionNs());
      latency.Add(now - t0, NsToUs(io->LatencyNs()));
      const uint64_t cow_now = ftl->stats().validity_cow_events;
      if (cow_now != last_cow) {
        cow_events.Add(now - t0, static_cast<double>(cow_now - last_cow));
        last_cow = cow_now;
      }
      ftl->PumpBackground(clock.NowNs());
    }
    per_round_cow.push_back(ftl->stats().validity_cow_events - cow_before);
    per_round_bytes.push_back(ftl->stats().validity_cow_bytes - bytes_before);
  }

  std::printf("\n(a) write latency over time (5 ms buckets)\n");
  std::printf("%s", latency.ToCsv(MsToNs(5), "t_sec", "latency_us").c_str());
  std::printf("\n(b) validity-bitmap CoW events over time (5 ms buckets)\n");
  std::printf("%s", cow_events.ToCsv(MsToNs(5), "t_sec", "cow_copies").c_str());

  PrintRule();
  for (size_t round = 0; round < per_round_cow.size(); ++round) {
    std::printf("round %zu: %llu chunk copies, %s of bitmap copied\n", round + 1,
                static_cast<unsigned long long>(per_round_cow[round]),
                HumanBytes(per_round_bytes[round]).c_str());
  }
  std::printf("(paper: 196 copies / 784 KB per snapshot on a device ~8x larger;\n"
              " latency 100 -> 350 us for ~50 ms after each create)\n");
  BenchFinish();
  return 0;
}
