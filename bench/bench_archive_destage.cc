// Extension bench (§7): destaging snapshots to archival storage.
//
// Measures full vs incremental destage as a function of the churn between snapshots:
// blocks streamed, archive bytes, virtual time (flash reads + archive streaming), and
// the flash space freed when the destaged snapshot is deleted.

#include "bench/bench_common.h"
#include "src/archive/snapshot_archiver.h"

namespace iosnap {
namespace {

void Row(uint64_t delta_pages) {
  FtlConfig config = BenchConfigSmall();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  ArchiveStore store((ArchiveConfig()));
  SnapshotArchiver archiver(ftl.get(), &store);

  const uint64_t base_pages = 32 * 1024;  // 128 MiB base image.
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  Prefill(ftl.get(), &clock, base_pages);
  auto s1 = ftl->CreateSnapshot("base", clock.NowNs());
  IOSNAP_CHECK(s1.ok());
  clock.AdvanceTo(s1->io.CompletionNs());

  const uint64_t t_full = clock.NowNs();
  auto full = archiver.ArchiveFull(s1->snap_id, t_full);
  IOSNAP_CHECK(full.ok());
  clock.AdvanceTo(full->finish_ns);

  PrefillRandom(ftl.get(), &clock, delta_pages, lba_space, 77);
  auto s2 = ftl->CreateSnapshot("delta", clock.NowNs());
  IOSNAP_CHECK(s2.ok());
  clock.AdvanceTo(s2->io.CompletionNs());

  const uint64_t t_incr = clock.NowNs();
  auto incr = archiver.ArchiveIncremental(s1->snap_id, full->archive_id, s2->snap_id,
                                          t_incr, /*delete_after=*/true);
  IOSNAP_CHECK(incr.ok());
  clock.AdvanceTo(incr->finish_ns);

  std::printf("%10s %12llu %10.0f ms %12llu %10.0f ms %10.1fx\n",
              HumanBytes(delta_pages * config.nand.page_size_bytes).c_str(),
              static_cast<unsigned long long>(full->blocks),
              NsToMs(full->finish_ns - t_full),
              static_cast<unsigned long long>(incr->blocks),
              NsToMs(incr->finish_ns - t_incr),
              incr->blocks > 0
                  ? static_cast<double>(full->blocks) / static_cast<double>(incr->blocks)
                  : 0.0);
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Extension: snapshot destaging to archival storage (128 MiB base image)",
              "incremental destage cost tracks the delta, not the volume size");
  std::printf("%10s %12s %13s %12s %13s %11s\n", "churn", "full blks", "full time",
              "incr blks", "incr time", "ratio");
  PrintRule();
  for (uint64_t pages : {1024ull, 4096ull, 16384ull, 32768ull}) {
    Row(pages);
  }
  PrintRule();
  std::printf("(sec 7: \"schemes to destage snapshots to archival disks are required\";\n"
              " incremental time includes the two activations used to diff the maps)\n");
  BenchFinish();
  return 0;
}
