// Figure 10: Impact of the segment cleaner on foreground write latency, and the effect
// of snapshot-aware GC rate limiting.
//
// Three devices run the same sustained 4K random-write workload hot enough to keep the
// cleaner busy: (a) the vanilla FTL; (b) ioSnap with two early snapshots, cleaner paced
// by the *vanilla* rate policy (estimates copy work from the active epoch only, so it
// under-budgets the snapshot-pinned cold data and the free pool collapses into inline
// stalls); (c) same but with the snapshot-aware estimate. The paper's result: (b) doubles
// write latency, (c) restores it to (a)'s level.

#include <set>

#include "bench/bench_common.h"

namespace iosnap {
namespace {

struct Case {
  const char* label;
  bool snapshots;
  bool aware_rate;
  int snapshot_count = 2;
};

// Write indices at which snapshots are created. The first two are the paper's placement
// (within the first quarter of the run); extra dormant snapshots for the large-count
// case land shortly after the first so they pin the same cold generation.
std::set<uint64_t> SnapshotPoints(int count, uint64_t total_writes) {
  std::set<uint64_t> points;
  if (count >= 1) {
    points.insert(total_writes / 10);
  }
  if (count >= 2) {
    points.insert(total_writes / 4);
  }
  // Extra snapshots are nearly back-to-back (dormant): they multiply the number of live
  // epochs the cleaner must merge without pinning much additional unique data.
  for (int k = 3; k <= count; ++k) {
    points.insert(total_writes / 10 + static_cast<uint64_t>(k - 2) * (total_writes / 400));
  }
  IOSNAP_CHECK(points.size() == static_cast<size_t>(count));
  return points;
}

void RunCase(const Case& c, bool print_timeline) {
  FtlConfig config = BenchConfigSmall();
  config.snapshots_enabled = c.snapshots;
  config.snapshot_aware_gc_rate = c.aware_rate;
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  // A working set large enough that two snapshot generations plus the active set pin
  // most of the device: victims then regularly contain snapshot-valid pages, which is
  // where the two pacing estimates diverge.
  const uint64_t lba_space = ftl->LbaCount() * 3 / 5;
  const uint64_t total_writes = config.nand.TotalPages() * 5 / 2;
  Rng rng(51);
  Timeline latency;
  OnlineStats stats;
  LatencyHistogram hist;
  const uint64_t t0 = clock.NowNs();

  const std::set<uint64_t> snap_points =
      c.snapshots ? SnapshotPoints(c.snapshot_count, total_writes) : std::set<uint64_t>{};
  for (uint64_t i = 0; i < total_writes; ++i) {
    // Snapshots early in the run pin a cold generation (within the first quarter of
    // writes, mirroring the paper's "still within the first segment" placement).
    if (snap_points.contains(i)) {
      auto s = ftl->CreateSnapshot("fig10", clock.NowNs());
      IOSNAP_CHECK(s.ok());
      clock.AdvanceTo(s->io.CompletionNs());
    }
    // No idle pump here: cleaning is driven purely by the write path's pacing budget,
    // which is exactly the policy under test.
    const uint64_t now = clock.NowNs();
    auto io = ftl->Write(rng.NextBelow(lba_space), {}, now);
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
    const double lat_us = NsToUs(io->LatencyNs());
    latency.Add(now - t0, lat_us);
    stats.Add(lat_us);
    hist.Add(io->LatencyNs());
  }

  std::printf("%-34s mean %8.1f us  p99 %8.1f us  max %9.1f us  inline stalls %6llu"
              "  gc merge %9.3f ms\n",
              c.label, stats.mean(), NsToUs(hist.PercentileNs(99)), stats.max(),
              static_cast<unsigned long long>(ftl->stats().gc_inline_stalls),
              NsToMs(ftl->stats().gc_merge_host_ns));
  if (print_timeline) {
    std::printf("  timeline (100 ms buckets):\n%s\n",
                latency.ToCsv(MsToNs(100), "t_sec", "write_lat_us").c_str());
  }
  // With --metrics_out the file reflects the last case measured.
  BenchDumpMetrics(*ftl);
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  Flags flags = BenchInit(argc, argv, {"timeline"});
  const bool timelines = flags.GetBool("timeline", false);
  PrintHeader("Figure 10: write latency under concurrent segment cleaning",
              "(b) vanilla rate policy with snapshots ~2x latency; (c) snapshot-aware"
              " pacing restores (a)'s baseline");
  RunCase({"(a) vanilla FTL", false, true}, timelines);
  RunCase({"(b) 2 snapshots, vanilla rate", true, false}, timelines);
  RunCase({"(c) 2 snapshots, snapshot-aware", true, true}, timelines);
  RunCase({"(d) 8 snapshots, snapshot-aware", true, true, 8}, timelines);
  PrintRule();
  std::printf("(paper: (b) doubles write latency vs (a); (c) brings it back down)\n");
  BenchFinish();
  return 0;
}
