// Ablation A1: segment-selection policy — greedy vs cost-benefit vs epoch-colocating.
//
// §5.4.2 argues (without evaluating) that colocating blocks of the same epoch reduces
// write amplification and validity-CoW overheads; this ablation measures it. A Zipfian
// (hot/cold) write workload with periodic snapshots runs to steady-state GC; we report
// write amplification, epoch intermixing (mean distinct epochs per closed segment),
// cleaner merge cost, and foreground latency.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

struct Row {
  const char* label;
  CleanerPolicy policy;
};

void RunRow(const Row& row) {
  FtlConfig config = BenchConfigSmall();
  config.cleaner_policy = row.policy;
  if (row.policy == CleanerPolicy::kEpochColocate) {
    config.gc_reserve_segments = 8;  // Per-class copy-forward heads need headroom.
    config.gc_low_free_segments = 20;
    config.gc_high_free_segments = 36;
  }
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;

  const uint64_t lba_space = ftl->LbaCount() / 2;
  const uint64_t total_writes = config.nand.TotalPages() * 3;
  ZipfWorkload workload(IoKind::kWrite, lba_space, 0.9, 81);
  OnlineStats latency;
  std::vector<uint32_t> snaps;

  for (uint64_t i = 0; i < total_writes; ++i) {
    // A snapshot every ~1/6 of the run, keeping at most two alive (rotation).
    if (i > 0 && i % (total_writes / 6) == 0) {
      if (snaps.size() >= 2) {
        IOSNAP_CHECK(ftl->DeleteSnapshot(snaps.front(), clock.NowNs()).ok());
        snaps.erase(snaps.begin());
      }
      auto s = ftl->CreateSnapshot("a1", clock.NowNs());
      IOSNAP_CHECK(s.ok());
      snaps.push_back(s->snap_id);
      clock.AdvanceTo(s->io.CompletionNs());
    }
    const IoOp op = *workload.Next();
    auto io = ftl->Write(op.lba, {}, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
    latency.Add(NsToUs(io->LatencyNs()));
  }

  // Epoch intermixing: distinct data epochs physically hosted per non-empty segment.
  double intermix_sum = 0;
  uint64_t closed = 0;
  for (uint64_t seg = 0; seg < config.nand.num_segments; ++seg) {
    const uint64_t programmed = ftl->device().ProgrammedPages(seg);
    if (programmed == 0) {
      continue;
    }
    // Count distinct epochs among programmed data pages.
    std::vector<uint32_t> seen;
    const uint64_t first = ftl->device().FirstPageOf(seg);
    for (uint64_t p = first; p < first + config.nand.pages_per_segment; ++p) {
      if (!ftl->device().IsProgrammed(p)) {
        continue;
      }
      const PageHeader& header = ftl->device().PeekHeader(p);
      if (header.type == RecordType::kData &&
          std::find(seen.begin(), seen.end(), header.epoch) == seen.end()) {
        seen.push_back(header.epoch);
      }
    }
    if (!seen.empty()) {
      intermix_sum += static_cast<double>(seen.size());
      ++closed;
    }
  }

  const FtlStats& stats = ftl->stats();
  const double wa = static_cast<double>(stats.total_pages_programmed) /
                    static_cast<double>(stats.user_writes);
  std::printf("%-14s WA %5.2f  epochs/segment %5.2f  merge host %7.2f ms  "
              "mean lat %7.1f us  stalls %5llu\n",
              row.label, wa, closed > 0 ? intermix_sum / static_cast<double>(closed) : 0,
              NsToMs(stats.gc_merge_host_ns), latency.mean(),
              static_cast<unsigned long long>(stats.gc_inline_stalls));
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Ablation A1: cleaner segment-selection policy (Zipf 0.9, 2 rotating snaps)",
              "epoch colocation reduces intermixing; cost-benefit helps hot/cold split");
  RunRow({"greedy", CleanerPolicy::kGreedy});
  RunRow({"cost-benefit", CleanerPolicy::kCostBenefit});
  RunRow({"epoch-coloc", CleanerPolicy::kEpochColocate});
  PrintRule();
  std::printf("(paper: policies called out as future work in sec 5.4.2)\n");
  BenchFinish();
  return 0;
}
