// Table 3: Memory overheads of snapshot activation.
//
// Five snapshots, each preceded by a fixed volume of random 4K writes. At every create
// we record the active forward-map size; afterwards each snapshot is activated and its
// freshly built map measured. The paper's two observations: memory grows with the data
// in the snapshot, and the activated tree is *more compact* than the organically grown
// active tree because activation bulk-loads fully packed nodes.
//
// Scaling: paper writes 1.6 GB per snapshot on 1.2 TB; we write 64 MiB per snapshot.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

constexpr int kSnapshots = 5;
constexpr uint64_t kBytesPerSnapshot = 64 * kMiB;

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Table 3: forward-map memory at create vs after activation (MB)",
              "activated tree is more compact than the active tree at the same state");

  FtlConfig config = BenchConfig();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  const uint64_t pages = kBytesPerSnapshot / config.nand.page_size_bytes;
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;

  std::vector<uint32_t> snaps;
  std::vector<uint64_t> tree_bytes_at_create;
  for (int i = 0; i < kSnapshots; ++i) {
    PrefillRandom(ftl.get(), &clock, pages, lba_space, 200 + static_cast<uint64_t>(i));
    auto create = ftl->CreateSnapshot("t3", clock.NowNs());
    IOSNAP_CHECK(create.ok());
    clock.AdvanceTo(create->io.CompletionNs());
    snaps.push_back(create->snap_id);
    auto bytes = ftl->ViewMapMemoryBytes(kPrimaryView);
    IOSNAP_CHECK(bytes.ok());
    tree_bytes_at_create.push_back(*bytes);
  }

  std::printf("%9s %22s %22s %12s\n", "snapshot", "tree at creation (MB)",
              "tree after activate (MB)", "entries");
  PrintRule();
  for (int i = 0; i < kSnapshots; ++i) {
    uint64_t finish = clock.NowNs();
    auto view = ftl->ActivateBlocking(snaps[static_cast<size_t>(i)], clock.NowNs(),
                                      /*writable=*/false, &finish);
    IOSNAP_CHECK(view.ok());
    clock.AdvanceTo(finish);
    auto view_bytes = ftl->ViewMapMemoryBytes(*view);
    auto view_entries = ftl->ViewMapEntryCount(*view);
    IOSNAP_CHECK(view_bytes.ok());
    IOSNAP_CHECK(view_entries.ok());
    std::printf("%9d %22.2f %22.2f %12llu\n", i + 1,
                static_cast<double>(tree_bytes_at_create[static_cast<size_t>(i)]) / 1e6,
                static_cast<double>(*view_bytes) / 1e6,
                static_cast<unsigned long long>(*view_entries));
    IOSNAP_CHECK(ftl->Deactivate(*view, clock.NowNs()).ok());
  }
  PrintRule();
  std::printf("(paper, 1.6 GB/snapshot: creation 1.38..14.44 MB vs activation\n"
              " 0.84..13.72 MB — activated tree consistently smaller)\n");
  BenchFinish();
  return 0;
}
