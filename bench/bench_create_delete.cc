// §6.2.1: Snapshot create and delete cost.
//
// The paper measures ~50 us per create/delete with 4 KB of metadata written to the log,
// *independent of how much data precedes the operation*. We sweep the pre-snapshot data
// volume and report create/delete latency and metadata pages written.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

void Row(uint64_t prefill_pages) {
  FtlConfig config = BenchConfig();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  PrefillRandom(ftl.get(), &clock, prefill_pages, ftl->LbaCount() / 2, 7);

  const uint64_t pages_before = ftl->stats().total_pages_programmed;
  auto create = ftl->CreateSnapshot("bench", clock.NowNs());
  IOSNAP_CHECK(create.ok());
  clock.AdvanceTo(create->io.CompletionNs());
  const uint64_t create_latency = create->io.LatencyNs();
  const uint64_t note_pages = ftl->stats().total_pages_programmed - pages_before;

  auto del = ftl->DeleteSnapshot(create->snap_id, clock.NowNs());
  IOSNAP_CHECK(del.ok());
  const uint64_t delete_latency = del->LatencyNs();

  std::printf("%10s %18.1f us %18.1f us %10llu page(s)\n",
              HumanBytes(prefill_pages * config.nand.page_size_bytes).c_str(),
              NsToUs(create_latency), NsToUs(delete_latency),
              static_cast<unsigned long long>(note_pages));
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Snapshot create/delete cost vs pre-existing data volume (sec 6.2.1)",
              "~50 us and one 4K note page regardless of data volume");
  std::printf("%10s %21s %21s %17s\n", "data", "create latency", "delete latency",
              "metadata");
  PrintRule();
  for (uint64_t pages : {1024ull, 4096ull, 16384ull, 65536ull, 262144ull}) {
    Row(pages);
  }
  PrintRule();
  std::printf("(paper: ~50 us, 4 KB metadata, independent of data written)\n");
  BenchFinish();
  return 0;
}
