// Figure 8: Snapshot activation latency vs data per snapshot and snapshot depth.
//
// Five snapshots are created, each after writing a fixed volume of random 4K data. Every
// snapshot is then activated (unthrottled). The paper observes: (1) activation time
// grows with total log size — the header scan must read the whole log because the
// cleaner may have moved blocks anywhere; (2) deeper snapshots take longer — their state
// accumulates their ancestors' blocks, so the map-reconstruction phase grows.
//
// Scaling: paper sweeps 4 MB..1.6 GB per snapshot on 1.2 TB; we sweep 4..256 MiB on 3 GiB.

#include "bench/bench_common.h"

namespace iosnap {
namespace {

constexpr int kSnapshots = 5;

void Row(uint64_t bytes_per_snapshot) {
  FtlConfig config = BenchConfig();
  std::unique_ptr<Ftl> ftl = MustCreate(config);
  SimClock clock;
  const uint64_t pages_per_snapshot = bytes_per_snapshot / config.nand.page_size_bytes;
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;

  std::vector<uint32_t> snaps;
  for (int i = 0; i < kSnapshots; ++i) {
    PrefillRandom(ftl.get(), &clock, pages_per_snapshot, lba_space,
                  100 + static_cast<uint64_t>(i));
    auto create = ftl->CreateSnapshot("fig8", clock.NowNs());
    IOSNAP_CHECK(create.ok());
    clock.AdvanceTo(create->io.CompletionNs());
    snaps.push_back(create->snap_id);
  }

  std::printf("%8s ", HumanBytes(bytes_per_snapshot).c_str());
  for (uint32_t snap : snaps) {
    uint64_t finish = clock.NowNs();
    auto view = ftl->ActivateBlocking(snap, clock.NowNs(), /*writable=*/false, &finish);
    IOSNAP_CHECK(view.ok());
    std::printf("%9.1f ", NsToMs(finish - clock.NowNs()));
    clock.AdvanceTo(finish);
    IOSNAP_CHECK(ftl->Deactivate(*view, clock.NowNs()).ok());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) {
  using namespace iosnap;
  BenchInit(argc, argv);
  PrintHeader("Figure 8: activation latency (ms) for snapshots 1..5",
              "grows with log size; within a cluster, deeper snapshots activate slower");
  std::printf("%8s %9s %9s %9s %9s %9s\n", "data/snap", "snap_1", "snap_2", "snap_3",
              "snap_4", "snap_5");
  PrintRule();
  for (uint64_t bytes : {4 * kMiB, 16 * kMiB, 64 * kMiB, 128 * kMiB, 256 * kMiB}) {
    Row(bytes);
  }
  PrintRule();
  std::printf("(paper, 4M..1.6G per snapshot: 10s of ms up to ~1.4 s, rising with both\n"
              " volume and snapshot index; scan phase constant per log size)\n");
  BenchFinish();
  return 0;
}
